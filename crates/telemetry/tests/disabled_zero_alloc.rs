//! The disabled-mode allocation budget: with telemetry off, every
//! macro and handle must be a load-and-branch — zero heap traffic — so
//! instrumented hot paths (GEMM tiles, codec frames, the engine round
//! loop) keep their zero-allocation steady-state contract bit for bit.
//!
//! Same technique as the workspace hot-path suite: install the counting
//! global allocator and diff the *per-thread* counter around the
//! measured window (the process counter would see libtest harness
//! threads).

use aergia_runtime::alloc_count::CountingAllocator;
use aergia_telemetry as tel;
use aergia_telemetry::{event, span};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

static LAZY_COUNTER: tel::LazyCounter = tel::LazyCounter::new("zero_alloc_total");
static LAZY_GAUGE: tel::LazyGauge = tel::LazyGauge::new("zero_alloc_gauge");
static LAZY_HIST: tel::LazyHistogram =
    tel::LazyHistogram::new("zero_alloc_hist", tel::DURATION_SECS_BUCKETS);

#[test]
fn disabled_telemetry_allocates_nothing() {
    assert!(!tel::enabled(), "telemetry must default to off");
    // Warm-up pass outside the window, in case any lazy runtime state
    // (TLS slots etc.) initializes on first touch.
    exercise(1);

    let before = ALLOC.thread_allocations();
    exercise(10_000);
    let after = ALLOC.thread_allocations();
    assert_eq!(after - before, 0, "disabled telemetry must be allocation-free in steady state");
}

/// One steady-state lap over every disabled-mode entry point.
fn exercise(iters: u64) {
    for i in 0..iters {
        tel::set_virtual_now(i);
        let _span = span!("round.fold", round = i, mode = "sim");
        event!("round.crash", client = i);
        LAZY_COUNTER.add(1);
        LAZY_GAUGE.set(i as f64);
        LAZY_HIST.observe(i as f64 * 1e-3);
        tel::flush_thread_events();
        tel::flush_metrics();
    }
}
