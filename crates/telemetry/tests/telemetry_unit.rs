//! Behavioural tests for the telemetry layer: histogram bucket edges,
//! sink round-trips, JSONL flush semantics.
//!
//! The registry and event log are process-global, so every test takes
//! the same lock and starts from `reset()` — libtest's default thread
//! parallelism must not interleave two tests' records.

use std::sync::{Mutex, MutexGuard};

use aergia_telemetry as tel;
use aergia_telemetry::{event, span};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests and resets telemetry state on entry.
fn fresh() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tel::disable();
    tel::reset();
    // Drop records another test's thread may still flush later? No:
    // the lock is held for the whole test body, and worker threads are
    // not used here.
    tel::enable();
    guard
}

#[test]
fn histogram_bucket_boundaries_are_le_semantics() {
    let _g = fresh();
    let h = tel::histogram("unit_edges", &[1.0, 10.0]);
    h.observe(1.0); // exactly on the first edge → first bucket (le semantics)
    h.observe(1.0000001); // just above → second bucket
    h.observe(10.0); // exactly on the last finite edge → second bucket
    h.observe(10.5); // above every finite edge → overflow bucket
    h.observe(-3.0); // below everything → first bucket
    assert_eq!(h.bucket_counts(), vec![2, 2, 1]);
    assert_eq!(h.count(), 5);
    assert!((h.sum() - (1.0 + 1.000_000_1 + 10.0 + 10.5 - 3.0)).abs() < 1e-9);

    // The snapshot renders *cumulative* buckets ending at +Inf == count.
    let snap = tel::snapshot();
    assert!(snap.contains("unit_edges_bucket{le=\"1\"} 2"), "snapshot:\n{snap}");
    assert!(snap.contains("unit_edges_bucket{le=\"10\"} 4"), "snapshot:\n{snap}");
    assert!(snap.contains("unit_edges_bucket{le=\"+Inf\"} 5"), "snapshot:\n{snap}");
    assert!(snap.contains("unit_edges_count 5"), "snapshot:\n{snap}");
    tel::disable();
}

#[test]
fn snapshot_round_trips_through_parser() {
    let _g = fresh();
    tel::counter("unit_rt_total").add(7);
    tel::gauge("unit_rt_gauge").set(2.5);
    tel::histogram("unit_rt_hist{phase=\"ff\"}", &[0.5]).observe(0.25);
    let snap = tel::snapshot();
    let parsed = tel::parse_snapshot(&snap).expect("snapshot must parse");
    assert_eq!(parsed.get("unit_rt_total"), Some(&7.0));
    assert_eq!(parsed.get("unit_rt_gauge"), Some(&2.5));
    assert_eq!(parsed.get("unit_rt_hist_bucket{phase=\"ff\",le=\"0.5\"}"), Some(&1.0));
    assert_eq!(parsed.get("unit_rt_hist_count{phase=\"ff\"}"), Some(&1.0));
    assert!(snap.contains("# TYPE unit_rt_total counter"));
    assert!(snap.contains("# TYPE unit_rt_hist histogram"));
    tel::disable();
}

#[test]
fn jsonl_has_stable_field_order_and_flushes_only_changes() {
    let _g = fresh();
    tel::set_virtual_now(500);
    {
        let _span = span!("round", round = 2u32, mode = "sim");
        event!("round.crash", client = 9u32);
        tel::set_virtual_now(750);
    }
    tel::counter("unit_flush_total").add(3);
    tel::flush_metrics();
    let first = tel::drain_jsonl();
    let mut lines = first.lines();
    // Point events skip the thread buffer, so the crash event precedes
    // the span records, which flush at drain time.
    assert_eq!(
        lines.next(),
        Some(r#"{"t":500,"kind":"event","name":"round.crash","client":9}"#),
        "full stream:\n{first}"
    );
    assert_eq!(
        lines.next(),
        Some(r#"{"t":500,"kind":"enter","name":"round","round":2,"mode":"sim"}"#)
    );
    assert_eq!(lines.next(), Some(r#"{"t":750,"kind":"exit","name":"round"}"#));
    assert!(first.contains(r#"{"t":750,"kind":"metric","name":"unit_flush_total","value":3}"#));

    // Unchanged since the last flush → no new record.
    tel::flush_metrics();
    assert_eq!(tel::drain_jsonl(), "");
    tel::counter("unit_flush_total").add(1);
    tel::flush_metrics();
    assert!(tel::drain_jsonl().contains(r#""name":"unit_flush_total","value":4"#));
    tel::disable();
}

#[test]
fn snapshot_only_metrics_stay_out_of_jsonl() {
    let _g = fresh();
    tel::gauge_snapshot_only("unit_wallclock_gflops").set(123.456);
    tel::counter("unit_visible_total").add(1);
    tel::flush_metrics();
    let jsonl = tel::drain_jsonl();
    assert!(!jsonl.contains("unit_wallclock_gflops"), "jsonl:\n{jsonl}");
    assert!(jsonl.contains("unit_visible_total"));
    assert!(tel::snapshot().contains("unit_wallclock_gflops 123.456"));
    tel::disable();
}

#[test]
fn disabled_layer_records_nothing() {
    let _g = fresh();
    tel::disable();
    {
        let _span = span!("ghost", x = 1u32);
        event!("ghost.event");
    }
    tel::counter("unit_ghost_total"); // direct registration still works...
    static LAZY: tel::LazyCounter = tel::LazyCounter::new("unit_ghost_lazy_total");
    LAZY.add(5); // ...but lazy handles are inert while disabled.
    tel::flush_metrics();
    assert_eq!(tel::drain_jsonl(), "");
    assert!(!tel::snapshot().contains("unit_ghost_lazy_total"));
}

#[test]
fn reset_zeroes_metrics_in_place() {
    let _g = fresh();
    let c = tel::counter("unit_reset_total");
    c.add(9);
    let h = tel::histogram("unit_reset_hist", &[1.0]);
    h.observe(0.5);
    tel::reset();
    assert_eq!(c.get(), 0, "the same handle must see the zeroed cell");
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0.0);
    assert_eq!(tel::virtual_now(), 0);
    tel::disable();
}

#[test]
fn histogram_duplicate_registration_returns_same_cell() {
    let _g = fresh();
    let a = tel::histogram("unit_dup_hist", &[1.0, 2.0]);
    let b = tel::histogram("unit_dup_hist", &[1.0, 2.0]);
    a.observe(0.5);
    assert_eq!(b.count(), 1, "both handles share one cell");
    tel::disable();
}
