//! Deterministic tracing spans and a metrics registry for the Aergia
//! reproduction.
//!
//! Aergia's contribution is a *timing* argument — the federator spots
//! stragglers from per-phase profiles and reschedules work to cut round
//! wall-clock — so observability is a first-class subsystem here, not an
//! afterthought. This crate is the substrate every other layer
//! instruments against: the engine's round lifecycle, the GEMM
//! microkernel dispatch, the wire codec, and the TCP runtime.
//!
//! # Design
//!
//! Three pieces, all vendored with zero external dependencies (the
//! crate sits at the bottom of the workspace DAG next to
//! `aergia-runtime`):
//!
//! 1. **Spans** — [`span!`] records an `enter` event and returns a
//!    guard whose drop records the matching `exit`; [`event!`] records
//!    a point event. Span records land on a *per-thread* buffer and
//!    reach the global event log only at an explicit
//!    [`flush_thread_events`] call, so the single deterministic
//!    federator thread controls event order. Point events append to the
//!    global log directly (network worker threads report drops and
//!    reconnects; their interleaving is inherently wall-clock).
//! 2. **Metrics** — a process-global registry of monotonic
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, keyed
//!    by Prometheus-style names (`aergia_codec_encoded_bytes_total` or
//!    with labels baked in: `aergia_gemm_calls_total{op="nn"}`).
//!    [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] give hot paths a
//!    `static` handle that registers on first use and costs one relaxed
//!    atomic op afterwards.
//! 3. **Sinks** — [`drain_jsonl`] renders the event log as JSONL with a
//!    stable field order, and [`snapshot`] renders the registry as a
//!    Prometheus-style text snapshot ([`parse_snapshot`] reads one
//!    back).
//!
//! # Determinism contract
//!
//! In simulator runs every record is stamped from the `simnet` virtual
//! clock — the engine publishes it via [`set_virtual_now`] — and span
//! events are only emitted from the deterministic federator thread, so
//! two runs with the same seed produce **byte-identical JSONL**.
//! Worker threads (GEMM kernels, TCP connection handlers) touch only
//! commutative counters/histograms, whose totals at a flush boundary
//! are order-independent. Metrics whose *values* are wall-clock
//! measurements (autotuner GFLOP/s, network round-trips) are registered
//! snapshot-only so they never leak into the JSONL stream.
//!
//! The whole layer is gated on one relaxed atomic flag and is **off by
//! default**: when disabled, every macro and handle is a load-and-branch
//! that performs zero allocations, so bit-identical training and bench
//! baselines are untouched.
//!
//! # Examples
//!
//! ```
//! use aergia_telemetry as tel;
//!
//! tel::reset();
//! tel::enable();
//! tel::set_virtual_now(1_000);
//! {
//!     let _g = tel::span!("round", round = 3u32);
//!     tel::counter("demo_rounds_total").add(1);
//! }
//! tel::flush_thread_events();
//! tel::flush_metrics();
//! let jsonl = tel::drain_jsonl();
//! assert!(jsonl.contains(r#"{"t":1000,"kind":"enter","name":"round","round":3}"#));
//! assert!(tel::snapshot().contains("demo_rounds_total 1"));
//! tel::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

mod metrics;
mod sink;
mod span;

pub use metrics::{
    counter, flush_metrics, gauge, gauge_snapshot_only, histogram, histogram_snapshot_only,
    Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, DURATION_SECS_BUCKETS,
    SIZE_BYTES_BUCKETS,
};
pub use sink::{parse_snapshot, snapshot};
pub use span::{drain_jsonl, flush_thread_events, point, SpanGuard, Value};

/// Global on/off switch. Off by default; every entry point checks this
/// first with a relaxed load, so the disabled cost is one branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The virtual "now" in integer microseconds, published by whichever
/// component owns the clock (the engine's simnet clock in simulator
/// runs; zero until someone sets it).
static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);

/// Turns the telemetry layer on. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the telemetry layer off. Already-registered metrics keep their
/// values; new records are simply not made.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the layer is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Publishes the current virtual time in microseconds. All subsequent
/// records are stamped with this value until it is advanced again.
///
/// A plain atomic store — safe to call even when telemetry is disabled
/// (it allocates nothing).
#[inline]
pub fn set_virtual_now(micros: u64) {
    VIRTUAL_NOW.store(micros, Ordering::Relaxed);
}

/// The most recently published virtual time, in microseconds.
#[inline]
pub fn virtual_now() -> u64 {
    VIRTUAL_NOW.load(Ordering::Relaxed)
}

/// Resets all recorded state for a fresh run: zeroes every registered
/// metric in place, clears the event log and the calling thread's span
/// buffer, and rewinds the virtual clock.
///
/// Registered metric *names* survive (hot-path `static` handles keep
/// pointing at live cells); only their values reset. Primarily a test
/// hook — production runs never need it.
pub fn reset() {
    metrics::reset_metrics();
    span::reset_events();
    VIRTUAL_NOW.store(0, Ordering::Relaxed);
}

/// Records an `enter` event on the calling thread's span buffer and
/// returns a guard that records the matching `exit` on drop.
///
/// Attributes are `key = value` pairs; values may be any type with a
/// [`Value`] conversion (unsigned/signed integers, floats, strings).
/// When telemetry is disabled this is a single branch and allocates
/// nothing.
///
/// ```
/// # use aergia_telemetry as tel;
/// let _guard = tel::span!("round.fold", round = 7u32);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records a point event directly on the global event log.
///
/// Same attribute syntax as [`span!`]. When telemetry is disabled this
/// is a single branch and allocates nothing.
///
/// ```
/// # use aergia_telemetry as tel;
/// tel::event!("round.crash", client = 12u32);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::point(
                $name,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}
