//! Output sinks: JSONL record rendering and the Prometheus-style text
//! snapshot (plus a parser for reading a snapshot back).

use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::atomic::Ordering;

use crate::metrics::registry;
use crate::span::{Record, Value};

/// Appends a JSON-escaped string literal (with quotes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON value (`null` for non-finite).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Formats an `f64` for the Prometheus snapshot.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders one record as a JSON object (no trailing newline). Field
/// order is fixed: `t`, `kind`, `name`, then payload/attributes.
pub(crate) fn render_record(out: &mut String, record: &Record) {
    match record {
        Record::Span { t, kind, name, attrs } => {
            let _ = write!(out, "{{\"t\":{t},\"kind\":\"{kind}\",\"name\":");
            push_json_str(out, name);
            for (key, value) in attrs {
                let _ = write!(out, ",\"{key}\":");
                match value {
                    Value::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    Value::I64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    Value::F64(v) => push_json_f64(out, *v),
                    Value::Str(v) => push_json_str(out, v),
                }
            }
            out.push('}');
        }
        Record::MetricU64 { t, name, value } => {
            let _ = write!(out, "{{\"t\":{t},\"kind\":\"metric\",\"name\":");
            push_json_str(out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        Record::MetricF64 { t, name, value } => {
            let _ = write!(out, "{{\"t\":{t},\"kind\":\"metric\",\"name\":");
            push_json_str(out, name);
            out.push_str(",\"value\":");
            push_json_f64(out, *value);
            out.push('}');
        }
        Record::Hist { t, name, count, sum } => {
            let _ = write!(out, "{{\"t\":{t},\"kind\":\"hist\",\"name\":");
            push_json_str(out, name);
            let _ = write!(out, ",\"count\":{count},\"sum\":");
            push_json_f64(out, *sum);
            out.push('}');
        }
    }
}

/// Splits `name{labels}` into (`name`, `Some("labels")`), or
/// (`name`, `None`) when the name carries no label block.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

fn push_type_line(out: &mut String, last_base: &mut String, base: &str, kind: &str) {
    if last_base != base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        last_base.clear();
        last_base.push_str(base);
    }
}

/// Renders the registry as a Prometheus-style text snapshot: one
/// `# TYPE` comment per metric base name, then one `name value` sample
/// per series, in sorted name order (counters, then gauges, then
/// histograms). Histograms expand to cumulative `_bucket{le=...}`
/// samples plus `_sum` and `_count`. Deterministic: same registry
/// contents ⇒ byte-identical text.
pub fn snapshot() -> String {
    let reg = registry().lock().expect("telemetry registry poisoned");
    let mut out = String::new();
    let mut last_base = String::new();
    for (name, cell) in &reg.counters {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut last_base, base, "counter");
        let _ = writeln!(out, "{name} {}", cell.load(Ordering::Relaxed));
    }
    for (name, cell) in &reg.gauges {
        let (base, _) = split_labels(name);
        push_type_line(&mut out, &mut last_base, base, "gauge");
        let _ = writeln!(out, "{name} {}", prom_f64(f64::from_bits(cell.load(Ordering::Relaxed))));
    }
    for (name, cell) in &reg.hists {
        let (base, labels) = split_labels(name);
        push_type_line(&mut out, &mut last_base, base, "histogram");
        let prefix = match labels {
            Some(labels) => format!("{base}_bucket{{{labels},le="),
            None => format!("{base}_bucket{{le="),
        };
        let mut cumulative = 0u64;
        for (i, bucket) in cell.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = cell.bounds.get(i).map_or_else(|| "+Inf".to_string(), |b| prom_f64(*b));
            let _ = writeln!(out, "{prefix}\"{le}\"}} {cumulative}");
        }
        let suffix = labels.map_or_else(String::new, |l| format!("{{{l}}}"));
        let _ = writeln!(out, "{base}_sum{suffix} {}", prom_f64(cell.sum()));
        let _ = writeln!(out, "{base}_count{suffix} {}", cell.count.load(Ordering::Relaxed));
    }
    out
}

/// Parses a snapshot produced by [`snapshot`] back into a flat
/// `sample name → value` map (comment lines are skipped). Errors on a
/// non-comment line that is not `name value` with a numeric value.
pub fn parse_snapshot(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("snapshot line {}: no value: {line:?}", idx + 1))?;
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|e| format!("snapshot line {}: bad value {v:?}: {e}", idx + 1))?,
        };
        out.insert(name.trim().to_string(), value);
    }
    Ok(out)
}
