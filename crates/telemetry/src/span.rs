//! Span and point events: per-thread buffers, the global event log,
//! and the guard type behind the [`span!`](crate::span) macro.

use std::cell::RefCell;
use std::sync::Mutex;

/// An attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with the shortest round-trip representation).
    F64(f64),
    /// String (JSON-escaped on output).
    Str(String),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $conv)
            }
        })*
    };
}

value_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(u64::from(v))
    }
}

/// One record in the event stream.
#[derive(Debug, Clone)]
pub(crate) enum Record {
    /// Span enter/exit or point event (`kind` ∈ enter/exit/event).
    Span { t: u64, kind: &'static str, name: &'static str, attrs: Vec<(&'static str, Value)> },
    /// Counter or integer-valued metric flush.
    MetricU64 { t: u64, name: String, value: u64 },
    /// Gauge flush.
    MetricF64 { t: u64, name: String, value: f64 },
    /// Histogram flush (count + sum; buckets live in the snapshot).
    Hist { t: u64, name: String, count: u64, sum: f64 },
}

thread_local! {
    static THREAD_BUF: RefCell<Vec<Record>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL_LOG: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn push_thread(record: Record) {
    THREAD_BUF.with(|buf| buf.borrow_mut().push(record));
}

pub(crate) fn push_global(mut records: Vec<Record>) {
    if records.is_empty() {
        return;
    }
    GLOBAL_LOG.lock().expect("telemetry event log poisoned").append(&mut records);
}

/// Moves the calling thread's buffered span events onto the global
/// event log, preserving their order. The engine calls this at round
/// boundaries so that, in simulator runs, the single federator thread
/// fully determines the stream order.
pub fn flush_thread_events() {
    let drained = THREAD_BUF.with(|buf| std::mem::take(&mut *buf.borrow_mut()));
    push_global(drained);
}

/// Records a point event straight onto the global event log (skipping
/// the per-thread buffer). Prefer the [`event!`](crate::event) macro,
/// which checks the enabled flag before building attributes.
pub fn point(name: &'static str, attrs: Vec<(&'static str, Value)>) {
    if !crate::enabled() {
        return;
    }
    push_global(vec![Record::Span { t: crate::virtual_now(), kind: "event", name, attrs }]);
}

/// Guard returned by [`span!`](crate::span): records `enter` when
/// created via [`SpanGuard::enter`] and the matching `exit` on drop.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    name: &'static str,
    live: bool,
}

impl SpanGuard {
    /// Records the `enter` event on the calling thread's buffer.
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, Value)>) -> Self {
        push_thread(Record::Span { t: crate::virtual_now(), kind: "enter", name, attrs });
        SpanGuard { name, live: true }
    }

    /// A no-op guard for when telemetry is disabled.
    pub fn disabled() -> Self {
        SpanGuard { name: "", live: false }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live && crate::enabled() {
            push_thread(Record::Span {
                t: crate::virtual_now(),
                kind: "exit",
                name: self.name,
                attrs: Vec::new(),
            });
        }
    }
}

/// Renders the global event log as JSONL (one record per line, stable
/// field order: `t`, `kind`, `name`, then attributes in call order) and
/// clears it. The calling thread's buffer is flushed first.
pub fn drain_jsonl() -> String {
    flush_thread_events();
    let drained = std::mem::take(&mut *GLOBAL_LOG.lock().expect("telemetry event log poisoned"));
    let mut out = String::new();
    for record in &drained {
        crate::sink::render_record(&mut out, record);
        out.push('\n');
    }
    out
}

/// Clears the global log and the calling thread's buffer.
pub(crate) fn reset_events() {
    THREAD_BUF.with(|buf| buf.borrow_mut().clear());
    GLOBAL_LOG.lock().expect("telemetry event log poisoned").clear();
}
