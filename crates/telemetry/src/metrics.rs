//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! All cells are shared atomics, so worker threads can bump counters
//! and observe histogram values concurrently; totals at any flush
//! boundary are order-independent (addition commutes), which is what
//! keeps snapshots deterministic even though thread interleaving is
//! not. Names are Prometheus-style, with labels baked into the name
//! string (`aergia_gemm_calls_total{op="nn"}`) — the registry itself is
//! a flat `name → cell` map.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::span::{push_global, Record};

/// Fixed bucket bounds (upper edges, seconds) for duration histograms:
/// round wall-clock, per-phase costs, network round-trips.
pub const DURATION_SECS_BUCKETS: &[f64] =
    &[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];

/// Fixed bucket bounds (upper edges, bytes) for size histograms:
/// frame and envelope sizes.
pub const SIZE_BYTES_BUCKETS: &[f64] =
    &[64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0];

/// A histogram cell: non-cumulative per-bucket counts plus a running
/// count and sum. Bounds are the finite upper edges in ascending order;
/// an implicit overflow bucket (`+Inf`) follows the last bound. A value
/// lands in the first bucket whose upper edge it does not exceed
/// (`value <= bound`, matching Prometheus `le` semantics).
#[derive(Debug)]
pub(crate) struct HistCell {
    pub(crate) bounds: Vec<f64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistCell {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistCell {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self.bounds.partition_point(|b| value > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Compare-exchange loop: f64 addition via the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }
}

/// A monotonic counter handle. Cheap to clone; all clones share one
/// cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding the most recently set `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.0.observe(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.0.sum()
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) hists: BTreeMap<String, Arc<HistCell>>,
    /// Metrics excluded from the JSONL stream because their values are
    /// wall-clock measurements (autotuner throughput, network RTT) —
    /// they would break same-seed byte-identity. Snapshot-only.
    pub(crate) snapshot_only: BTreeSet<String>,
    /// Value (counter value / gauge bits / histogram count) at the last
    /// [`flush_metrics`] — only changed metrics emit a JSONL record.
    flushed: BTreeMap<String, u64>,
}

pub(crate) fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn check_fresh(reg: &Registry, name: &str, kind: &str) {
    let taken = match kind {
        "counter" => reg.gauges.contains_key(name) || reg.hists.contains_key(name),
        "gauge" => reg.counters.contains_key(name) || reg.hists.contains_key(name),
        _ => reg.counters.contains_key(name) || reg.gauges.contains_key(name),
    };
    assert!(!taken, "telemetry metric {name:?} already registered with a different kind");
}

/// Registers (or fetches) the counter `name`.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    check_fresh(&reg, name, "counter");
    let cell =
        reg.counters.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))).clone();
    Counter(cell)
}

/// Registers (or fetches) the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    check_fresh(&reg, name, "gauge");
    let cell =
        reg.gauges.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))).clone();
    Gauge(cell)
}

/// Registers (or fetches) a gauge excluded from the JSONL stream — use
/// for wall-clock-valued measurements that must not break same-seed
/// byte-identity (they still appear in the snapshot).
pub fn gauge_snapshot_only(name: &str) -> Gauge {
    let g = gauge(name);
    registry().lock().expect("telemetry registry poisoned").snapshot_only.insert(name.to_string());
    g
}

/// Registers (or fetches) the histogram `name` with the given finite
/// upper bucket edges (ascending; an overflow bucket is implicit).
/// Bounds must match any earlier registration of the same name.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    check_fresh(&reg, name, "histogram");
    let cell = reg
        .hists
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(HistCell::new(bounds)))
        .clone();
    assert!(
        cell.bounds == bounds,
        "telemetry histogram {name:?} re-registered with different bounds"
    );
    Histogram(cell)
}

/// Registers (or fetches) a histogram excluded from the JSONL stream
/// (see [`gauge_snapshot_only`]).
pub fn histogram_snapshot_only(name: &str, bounds: &[f64]) -> Histogram {
    let h = histogram(name, bounds);
    registry().lock().expect("telemetry registry poisoned").snapshot_only.insert(name.to_string());
    h
}

/// A `static`-friendly counter that registers itself on first use.
/// After that, [`add`](LazyCounter::add) is one enabled-check plus one
/// relaxed atomic add — cheap enough for GEMM-kernel call sites.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Creates the handle (const, so it can live in a `static`).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter { name, cell: OnceLock::new() }
    }

    /// Adds `n` when telemetry is enabled; a single branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.get_or_init(|| counter(self.name)).add(n);
        }
    }
}

/// A `static`-friendly gauge (see [`LazyCounter`]). Registers
/// snapshot-only when constructed with
/// [`new_snapshot_only`](LazyGauge::new_snapshot_only).
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    snapshot_only: bool,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Creates the handle (const).
    pub const fn new(name: &'static str) -> Self {
        LazyGauge { name, snapshot_only: false, cell: OnceLock::new() }
    }

    /// Creates a handle whose gauge never appears in the JSONL stream.
    pub const fn new_snapshot_only(name: &'static str) -> Self {
        LazyGauge { name, snapshot_only: true, cell: OnceLock::new() }
    }

    /// Sets the gauge when telemetry is enabled.
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| {
                    if self.snapshot_only {
                        gauge_snapshot_only(self.name)
                    } else {
                        gauge(self.name)
                    }
                })
                .set(value);
        }
    }
}

/// A `static`-friendly histogram (see [`LazyCounter`]).
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    bounds: &'static [f64],
    snapshot_only: bool,
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Creates the handle (const).
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        LazyHistogram { name, bounds, snapshot_only: false, cell: OnceLock::new() }
    }

    /// Creates a handle whose histogram never appears in the JSONL
    /// stream.
    pub const fn new_snapshot_only(name: &'static str, bounds: &'static [f64]) -> Self {
        LazyHistogram { name, bounds, snapshot_only: true, cell: OnceLock::new() }
    }

    /// Records one observation when telemetry is enabled.
    #[inline]
    pub fn observe(&self, value: f64) {
        if crate::enabled() {
            self.cell
                .get_or_init(|| {
                    if self.snapshot_only {
                        histogram_snapshot_only(self.name, self.bounds)
                    } else {
                        histogram(self.name, self.bounds)
                    }
                })
                .observe(value);
        }
    }
}

/// Appends one JSONL record to the global event log for every metric
/// whose value changed since the previous flush, stamped with the
/// current virtual time. Counters and gauges emit their value;
/// histograms emit their count and sum. Iteration is in sorted name
/// order (counters, then gauges, then histograms), so the stream is
/// deterministic. Snapshot-only metrics are skipped.
///
/// Call this from the thread that owns event ordering (the federator
/// thread in simulator runs) at deterministic points — the engine does
/// so at round boundaries.
pub fn flush_metrics() {
    if !crate::enabled() {
        return;
    }
    // Buffered span records precede the metric flush in the stream.
    crate::span::flush_thread_events();
    let t = crate::virtual_now();
    let mut records = Vec::new();
    {
        let mut reg = registry().lock().expect("telemetry registry poisoned");
        let mut updates: Vec<(String, u64)> = Vec::new();
        for (name, cell) in &reg.counters {
            if reg.snapshot_only.contains(name) {
                continue;
            }
            let cur = cell.load(Ordering::Relaxed);
            if reg.flushed.get(name).copied().unwrap_or(0) != cur {
                records.push(Record::MetricU64 { t, name: name.clone(), value: cur });
                updates.push((name.clone(), cur));
            }
        }
        for (name, cell) in &reg.gauges {
            if reg.snapshot_only.contains(name) {
                continue;
            }
            let bits = cell.load(Ordering::Relaxed);
            if reg.flushed.get(name).copied().unwrap_or(0) != bits {
                records.push(Record::MetricF64 {
                    t,
                    name: name.clone(),
                    value: f64::from_bits(bits),
                });
                updates.push((name.clone(), bits));
            }
        }
        for (name, cell) in &reg.hists {
            if reg.snapshot_only.contains(name) {
                continue;
            }
            let count = cell.count.load(Ordering::Relaxed);
            if reg.flushed.get(name).copied().unwrap_or(0) != count {
                records.push(Record::Hist { t, name: name.clone(), count, sum: cell.sum() });
                updates.push((name.clone(), count));
            }
        }
        for (name, v) in updates {
            reg.flushed.insert(name, v);
        }
    }
    push_global(records);
}

/// Zeroes every registered metric in place and forgets the last-flush
/// watermarks. Registrations (and `static` handles) survive.
pub(crate) fn reset_metrics() {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    for cell in reg.counters.values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.gauges.values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.hists.values() {
        cell.zero();
    }
    reg.flushed.clear();
}
