//! Seeded random tensor initialisation.
//!
//! All randomness in the workspace flows through caller-supplied [`rand`]
//! generators so that every experiment is reproducible from a single seed.
//! Gaussian sampling uses the Box–Muller transform rather than an extra
//! `rand_distr` dependency (see `DESIGN.md` §8).

use rand::{Rng, RngExt as _};

use crate::Tensor;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = aergia_tensor::init::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    (mag * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills `t` with `N(mean, std²)` samples.
pub fn normal<R: Rng + ?Sized>(t: &mut Tensor, rng: &mut R, mean: f32, std: f32) {
    for x in t.data_mut() {
        *x = mean + std * standard_normal(rng);
    }
}

/// Fills `t` with uniform samples from `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn uniform<R: Rng + ?Sized>(t: &mut Tensor, rng: &mut R, low: f32, high: f32) {
    assert!(low < high, "init::uniform: empty range [{low}, {high})");
    for x in t.data_mut() {
        *x = rng.random_range(low..high);
    }
}

/// Kaiming-uniform initialisation for ReLU networks: samples from
/// `[-√(6/fan_in), √(6/fan_in))`.
///
/// `fan_in` is the number of inputs feeding each output unit (for a conv
/// layer, `in_channels · kh · kw`).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform<R: Rng + ?Sized>(t: &mut Tensor, rng: &mut R, fan_in: usize) {
    assert!(fan_in > 0, "init::kaiming_uniform: fan_in must be positive");
    let bound = (6.0_f32 / fan_in as f32).sqrt();
    uniform(t, rng, -bound, bound);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = Tensor::zeros(&[10_000]);
        normal(&mut t, &mut rng, 1.0, 2.0);
        let mean = t.mean();
        let var =
            t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / (t.numel() - 1) as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = Tensor::zeros(&[1000]);
        uniform(&mut t, &mut rng, -0.25, 0.25);
        assert!(t.data().iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Tensor::zeros(&[1000]);
        kaiming_uniform(&mut t, &mut rng, 600);
        let bound = (6.0_f32 / 600.0).sqrt();
        assert!(t.max_abs() <= bound);
    }

    #[test]
    fn same_seed_same_tensor() {
        let mut a = Tensor::zeros(&[64]);
        let mut b = Tensor::zeros(&[64]);
        normal(&mut a, &mut StdRng::seed_from_u64(9), 0.0, 1.0);
        normal(&mut b, &mut StdRng::seed_from_u64(9), 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_is_finite_over_many_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
