//! The owned dense tensor type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::shape::{Shape, TensorError};

/// An owned, row-major, dense `f32` tensor.
///
/// `Tensor` is the value type that flows through the whole Aergia stack:
/// images, activations, gradients and model weights are all `Tensor`s. The
/// representation is a flat `Vec<f32>` plus a validated [`Shape`]; element
/// `(i, j, k)` of a rank-3 tensor lives at `data[i*s0 + j*s1 + k]` with
/// row-major strides.
///
/// Construction validates shapes; arithmetic methods **panic** on shape
/// mismatch (they are used in inner training loops where a `Result` would be
/// unwieldy) while the fallible entry points ([`Tensor::from_vec`],
/// [`Tensor::reshape`]) return [`TensorError`].
///
/// # Examples
///
/// ```
/// use aergia_tensor::Tensor;
///
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let mut t = Tensor::zeros(&[2, 3]);
/// t.fill(1.5);
/// assert_eq!(t.sum(), 9.0);
/// let u = t.reshape(&[3, 2])?;
/// assert_eq!(u.shape().dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension; use [`Shape::new`] to
    /// validate untrusted dimension lists first.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims).expect("Tensor::zeros: invalid shape");
        let numel = shape.numel();
        Tensor { data: vec![0.0; numel], shape }
    }

    /// Creates a tensor filled with ones.
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims).expect("Tensor::full: invalid shape");
        let numel = shape.numel();
        Tensor { data: vec![value; numel], shape }
    }

    /// Creates the `n`-by-`n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer in a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements `dims` describes, or [`TensorError::ZeroDim`]
    /// for invalid dims.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch { len: data.len(), expected: shape.numel() });
        }
        Ok(Tensor { data, shape })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a plain slice (outermost first).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor in place to `dims` and zero-fills it, reusing
    /// the existing heap allocation whenever its capacity suffices.
    ///
    /// This is the buffer-reuse primitive behind the `_into` kernels and
    /// [`crate::Workspace`]: in a steady-state training loop the same
    /// tensor is reset to the same shape every batch, so after the first
    /// (warm-up) batch `reset` never touches the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use aergia_tensor::Tensor;
    ///
    /// let mut t = Tensor::ones(&[2, 3]);
    /// t.reset(&[3, 2]);
    /// assert_eq!(t.dims(), &[3, 2]);
    /// assert_eq!(t.sum(), 0.0);
    /// ```
    pub fn reset(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            self.shape.set_dims(dims).expect("Tensor::reset: invalid shape");
        }
        let numel = self.shape.numel();
        self.data.clear();
        self.data.resize(numel, 0.0);
    }

    /// [`Tensor::reset`] without the zero-fill: reshapes in place but
    /// leaves existing buffer contents **unspecified**. Only for callers
    /// that immediately overwrite every element (copy/transpose-style
    /// kernels) — it halves the memory writes of [`Tensor::reset`] on
    /// those paths. Accumulating kernels must use [`Tensor::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension.
    pub fn reset_for_overwrite(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            self.shape.set_dims(dims).expect("Tensor::reset_for_overwrite: invalid shape");
        }
        let numel = self.shape.numel();
        if self.data.len() != numel {
            self.data.resize(numel, 0.0);
        }
    }

    /// Overwrites this tensor with `other`'s shape and contents, reusing
    /// the existing heap allocation whenever its capacity suffices (the
    /// in-place counterpart of `clone`).
    ///
    /// # Examples
    ///
    /// ```
    /// use aergia_tensor::Tensor;
    ///
    /// let src = Tensor::ones(&[2, 2]);
    /// let mut dst = Tensor::zeros(&[4]);
    /// dst.copy_from(&src);
    /// assert_eq!(dst, src);
    /// ```
    pub fn copy_from(&mut self, other: &Tensor) {
        if self.shape != other.shape {
            self.shape.set_dims(other.dims()).expect("source shape is valid");
        }
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Largest absolute element, or 0.0 for the empty product of dims.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm of the tensor viewed as a flat vector.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "Tensor::add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "Tensor::sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Elementwise `self *= other` (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "Tensor::mul_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// BLAS-style `self += alpha * other`; the workhorse of SGD updates.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "Tensor::axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Returns `self + other` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns `self - other` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// Used to turn `[batch, classes]` logits into predicted labels.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "Tensor::argmax_rows: rank-2 tensor required");
        let cols = self.dims()[1];
        self.data
            .chunks_exact(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold(
                        (0usize, f32::NEG_INFINITY),
                        |(bi, bv), (i, &v)| {
                            if v > bv {
                                (i, v)
                            } else {
                                (bi, bv)
                            }
                        },
                    )
                    .0
            })
            .collect()
    }

    /// True when every element is finite (no NaN/Inf); handy in tests and
    /// divergence checks.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Tensor {
    /// A scalar zero tensor (shape `[]`, one element).
    fn default() -> Self {
        Tensor { data: vec![0.0], shape: Shape::new(&[]).expect("scalar shape") }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_fill() {
        let mut t = Tensor::zeros(&[2, 2]);
        assert_eq!(t.sum(), 0.0);
        t.fill(2.0);
        assert_eq!(t.sum(), 8.0);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let u = t.reshape(&[4]).unwrap();
        assert_eq!(u.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.data()[4], 1.0);
        assert_eq!(i.data()[1], 0.0);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(-0.5, &b);
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn hadamard_and_sub() {
        let a = Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap();
        let mut c = a.clone();
        c.mul_assign(&b);
        assert_eq!(c.data(), &[8.0, 15.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_panics_on_mismatch() {
        let mut a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.add_assign(&b);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.5, 7.0, -1.0], &[3, 2]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn sq_norm_and_max_abs() {
        let t = Tensor::from_vec(vec![-3.0, 4.0], &[2]).unwrap();
        assert_eq!(t.sq_norm(), 25.0);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.is_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn default_is_scalar_zero() {
        let t = Tensor::default();
        assert_eq!(t.numel(), 1);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn serde_round_trip_via_display_debug() {
        // Serialize/Deserialize derive compiles and Display is non-empty.
        let t = Tensor::ones(&[2, 2]);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
