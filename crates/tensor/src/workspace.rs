//! A bump pool of reusable tensor buffers for the allocation-free hot path.
//!
//! Training a CNN batch touches the same tensor shapes over and over:
//! activations, im2col patch matrices, gradient scratch. Allocating each of
//! them per batch puts the allocator — not the matmul kernels — on the
//! critical path once many simulated clients train concurrently. A
//! [`Workspace`] keeps those buffers alive between batches so a steady-state
//! training loop performs **zero** heap allocations (asserted by the
//! workspace's counting-allocator test suite).
//!
//! Four pools cover the reuse patterns:
//!
//! * a **shape-keyed pool** ([`Workspace::take`]/[`Workspace::give`]) for
//!   scratch whose dimensions the caller knows (patch matrices, gradient
//!   accumulators) — a buffer is reused only for its exact shape, so its
//!   capacity is always right;
//! * an **untyped scratch stack** ([`Workspace::take_scratch`]/
//!   [`Workspace::give_scratch`]) for the ping-pong activation buffers of a
//!   layer pipeline, where each buffer is [`Tensor::reset`] to a different
//!   shape per layer and LIFO order keeps the same physical buffer in the
//!   same role every batch;
//! * two **GEMM pack stacks** ([`Workspace::take_packed_a`]/
//!   [`Workspace::take_packed_b`] and their `give_*` twins) for the
//!   transient [`PackedA`]/[`PackedB`] operand packs of the backward-pass
//!   matmuls, whose operands change every batch. Pack buffers fully
//!   rewrite themselves on every `pack_*`, so dirty LIFO reuse is safe and
//!   their capacities stop growing once the per-layer high-water marks are
//!   reached. (Cached *weight* packs live in the layers themselves, not
//!   here — see `crate::gemm`.)
//!
//! Buffers returned by either `take` have **unspecified contents**; every
//! `_into` kernel and `Layer::*_into` method fully defines its output, so no
//! caller observes stale values. Determinism is unaffected: a workspace only
//! changes *where* results are written, never the arithmetic or its order,
//! and the engine's determinism suite pins workspace-backed runs bit-for-bit
//! against the allocating path.

use crate::gemm::{PackedA, PackedB};
use crate::Tensor;

/// A pool of reusable [`Tensor`] buffers: a shape-keyed pool
/// ([`Workspace::take`]/[`Workspace::give`]) plus a LIFO scratch stack
/// ([`Workspace::take_scratch`]/[`Workspace::give_scratch`]) — see the
/// module docs above for the reuse patterns each serves.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor, Workspace};
///
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let mut ws = Workspace::new();
/// let a = Tensor::ones(&[8, 4]);
/// let b = Tensor::ones(&[4, 8]);
/// for _ in 0..10 {
///     // After the first iteration this loop never allocates: the buffer
///     // cycles between the pool and the matmul output.
///     let mut out = ws.take(&[8, 8]);
///     ops::matmul_into(&a, &b, &mut out)?;
///     assert_eq!(out.sum(), 256.0);
///     ws.give(out);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    shaped: Vec<Tensor>,
    scratch: Vec<Tensor>,
    packed_a: Vec<PackedA>,
    packed_b: Vec<PackedB>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are pooled as they are given
    /// back, so the first pass through a training loop is the warm-up that
    /// populates it.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Pops a buffer of exactly `dims` from the shape-keyed pool, or
    /// allocates a fresh zeroed one on a miss. Pooled buffer contents are
    /// **unspecified** — callers must fully define them (the `_into`
    /// kernels do).
    ///
    /// # Panics
    ///
    /// Panics if `dims` contains a zero dimension.
    pub fn take(&mut self, dims: &[usize]) -> Tensor {
        match self.shaped.iter().position(|t| t.dims() == dims) {
            Some(i) => self.shaped.swap_remove(i),
            None => Tensor::zeros(dims),
        }
    }

    /// Returns a buffer to the shape-keyed pool for a later
    /// [`Workspace::take`] of the same shape.
    pub fn give(&mut self, tensor: Tensor) {
        self.shaped.push(tensor);
    }

    /// Pops an arbitrary buffer from the scratch stack (or a fresh scalar
    /// tensor when empty). Intended for outputs that the callee will
    /// [`Tensor::reset`] anyway — e.g. the two ping-pong activation
    /// buffers of a sequential forward/backward pass; LIFO reuse keeps
    /// each buffer in a stable role, so capacities stop growing after the
    /// first batch.
    pub fn take_scratch(&mut self) -> Tensor {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns a buffer to the scratch stack.
    pub fn give_scratch(&mut self, tensor: Tensor) {
        self.scratch.push(tensor);
    }

    /// Pops a reusable [`PackedA`] from the pack stack (or a fresh empty
    /// one). Contents are stale until the next `pack_*` call, which fully
    /// rewrites them.
    pub fn take_packed_a(&mut self) -> PackedA {
        self.packed_a.pop().unwrap_or_default()
    }

    /// Returns a [`PackedA`] to the pack stack. Invalidated on the way in
    /// like [`Workspace::give_packed_b`]: autotuned packs carry their
    /// kernel-variant layout with them, so a pool hit must never be
    /// usable until its next `pack_*` call re-describes both contents and
    /// layout.
    pub fn give_packed_a(&mut self, mut pack: PackedA) {
        pack.invalidate();
        self.packed_a.push(pack);
    }

    /// Pops a reusable [`PackedB`] from the pack stack (or a fresh empty
    /// one). Contents are stale until the next `pack_*` call, which fully
    /// rewrites them.
    pub fn take_packed_b(&mut self) -> PackedB {
        self.packed_b.pop().unwrap_or_default()
    }

    /// Returns a [`PackedB`] to the pack stack. The pack is invalidated
    /// on the way in, so a later taker that forgets to repack trips the
    /// kernels' stale-pack assertion instead of silently multiplying
    /// against a previous owner's operand — or, now that packs are laid
    /// out per autotuned kernel variant, against a previous owner's
    /// *layout*.
    pub fn give_packed_b(&mut self, mut pack: PackedB) {
        pack.invalidate();
        self.packed_b.push(pack);
    }

    /// Number of buffers currently pooled (all pools).
    pub fn pooled(&self) -> usize {
        self.shaped.len() + self.scratch.len() + self.packed_a.len() + self.packed_b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_exact_shape_buffers() {
        let mut ws = Workspace::new();
        let t = ws.take(&[4, 3]);
        let ptr = t.data().as_ptr();
        ws.give(t);
        assert_eq!(ws.pooled(), 1);
        let again = ws.take(&[4, 3]);
        assert_eq!(again.data().as_ptr(), ptr, "same-shape take must reuse the pooled buffer");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_misses_on_shape_mismatch() {
        let mut ws = Workspace::new();
        let t = ws.take(&[2, 2]);
        ws.give(t);
        let other = ws.take(&[2, 3]);
        assert_eq!(other.dims(), &[2, 3]);
        // The 2x2 buffer is still pooled.
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn scratch_stack_is_lifo() {
        let mut ws = Workspace::new();
        let mut a = ws.take_scratch();
        a.reset(&[8]);
        let a_ptr = a.data().as_ptr();
        let b = ws.take_scratch();
        ws.give_scratch(b);
        ws.give_scratch(a);
        let top = ws.take_scratch();
        assert_eq!(top.data().as_ptr(), a_ptr, "scratch reuse must pop the last buffer given");
    }

    #[test]
    fn fresh_takes_are_zeroed() {
        let mut ws = Workspace::new();
        assert_eq!(ws.take(&[3, 3]).sum(), 0.0);
        assert_eq!(ws.take_scratch().numel(), 1);
    }

    #[test]
    fn pack_pools_cycle_buffers() {
        let mut ws = Workspace::new();
        let mut pb = ws.take_packed_b();
        pb.pack(&Tensor::ones(&[4, 4])).unwrap();
        ws.give_packed_b(pb);
        let mut pa = ws.take_packed_a();
        pa.pack_transposed(&Tensor::ones(&[4, 4])).unwrap();
        ws.give_packed_a(pa);
        assert_eq!(ws.pooled(), 2);
        // The pooled pack comes back with its (stale) capacity intact.
        let pb = ws.take_packed_b();
        assert_eq!((pb.k(), pb.n()), (4, 4));
        assert_eq!(ws.pooled(), 1);
    }

    /// A pooled pack may be laid out for any kernel variant its previous
    /// owner tuned to — both pools must hand it back *invalid*, so the
    /// next owner is forced through a `pack_*` call (which rewrites
    /// contents *and* layout tag) before any kernel can consume it.
    #[test]
    fn pack_pools_invalidate_on_give() {
        let mut ws = Workspace::new();
        let mut pb = ws.take_packed_b();
        pb.pack(&Tensor::ones(&[4, 4])).unwrap();
        assert!(pb.is_valid());
        ws.give_packed_b(pb);
        assert!(!ws.take_packed_b().is_valid(), "pooled PackedB must come back stale");

        let mut pa = ws.take_packed_a();
        pa.pack_transposed(&Tensor::ones(&[4, 4])).unwrap();
        assert!(pa.is_valid());
        ws.give_packed_a(pa);
        assert!(!ws.take_packed_a().is_valid(), "pooled PackedA must come back stale");
    }
}
