//! Packed, register-blocked GEMM: the microkernel architecture behind the
//! [`crate::ops`] matmul family.
//!
//! # Architecture
//!
//! The classic blocked kernels stream an *unpacked* `B` row by row, which
//! keeps every output element in memory across the whole shared dimension
//! and re-derives `B`'s addressing per row. The packed scheme splits a
//! product into the three standard stages of a high-performance GEMM:
//!
//! 1. **Pack `B`** ([`PackedB`]): the `k×n` operand is rearranged into
//!    `ceil(n / nr)` *column panels*. A panel holds `nr` consecutive output
//!    columns laid out `k`-major — element `(kk, c)` of panel `jp` lives at
//!    `panel[kk·nr + c]` — so the microkernel's inner step loads one
//!    contiguous `nr`-vector per `k`. Ragged edge columns are zero-padded
//!    to `nr`.
//! 2. **Pack `A` row tiles** ([`PackedA`]): used when the `A` operand is
//!    stored transposed (`matmul_tn`'s `k×m` layout), where direct access
//!    would stride by `m` per `k` step. Rows are regrouped into `mr`-row
//!    tiles laid `k`-major (`tile[kk·mr + r]`), zero-padding the ragged
//!    tail tile. For row-major `A` operands (`matmul`/`matmul_nt`) the
//!    rows are already contiguous along `k`, so the microkernel reads them
//!    in place.
//! 3. **Microkernel**: an `mr × nr` register tile of accumulators walks the
//!    shared dimension once. Per `k` step it broadcasts `mr` values of `A`
//!    and multiplies them into `nr` columns of the `B` panel — vectorized
//!    across output *columns* only, never across `k` — keeping `mr·nr`
//!    partial sums in registers instead of re-loading and re-storing `C`
//!    every step.
//!
//! # Kernel variants and runtime dispatch
//!
//! The register-tile geometry `mr × nr` and the instruction set that
//! executes it form a [`KernelVariant`]. Each pack is **tagged** with the
//! variant it was laid out for (the panel/tile width is part of the
//! memory layout), and the drivers dispatch on that tag — a pack laid out
//! for one variant can never be fed to a kernel expecting another, because
//! the kernel *is chosen from the pack*. Three ISA tiers exist:
//!
//! * **Scalar** (`4×8`): the portable baseline — a scalar-ordered loop the
//!   autovectorizer lifts to SIMD where it can. Always available, and
//!   forced process-wide by setting `AERGIA_FORCE_SCALAR=1` (see
//!   [`active_isa`]). A generic scalar kernel additionally executes *any*
//!   variant's layout, so a SIMD-tagged pack still computes correct (and
//!   bit-identical) results on a scalar-only process.
//! * **AVX2** (`4×8`, `4×16`, `8×8`): explicit `std::arch` intrinsics, one
//!   or two 256-bit accumulator vectors per row.
//! * **AVX-512F** (`8×16`, `8×32`, `4×16`): 512-bit accumulators; `8×32`
//!   holds 16 independent accumulator chains, enough to hide the FP-add
//!   latency of the mul+add (non-FMA) inner step on both port-bound and
//!   latency-bound cores.
//!
//! Variants are picked per GEMM shape by a small per-process autotuner
//! ([`tuned_variant`]): the first time a `(op, m, k, n)` shape is seen,
//! the eligible variants are timed on synthetic operands and the winner is
//! cached in a global map. Layers memoize the choice next to their cached
//! weight packs (via [`VariantCache`]), so steady-state training pays
//! neither the tuning cost nor the map lookup — and no allocations.
//! Shapes too small to matter skip the timing and take the ISA's default
//! variant. `K_BLOCK` survives as the panelling constant of the retained
//! blocked oracle kernels; the packed layout keeps each panel as one
//! full-`k` slab (the shapes this crate serves never exceed the L2 a
//! panel streams from, so `k`-blocking bought nothing in measurement).
//!
//! # Determinism contract
//!
//! Every output element accumulates its `k` contributions **strictly in
//! ascending-`k` order from a `+0.0` start**, with a separate multiply and
//! add per step (never `mul_add`/FMA — x86 `vmulps`/`vaddps` round each
//! operation exactly like the scalar ops, an FMA's single rounding would
//! not), exactly like the naive reference kernels. The register tile only
//! changes *where* the running sum lives (a register instead of the output
//! buffer) and *how many* elements advance together — never the sequence
//! of floating-point operations that produce any single element. That is
//! why the variant choice is free: `mr`/`nr`/ISA decide which *other*
//! elements share the register tile, not any element's own ascending-`k`
//! mul/add chain, so every variant is bit-identical to every other and to
//! the references.
//!
//! On non-finite inputs the contract is exactly what IEEE 754 plus the
//! compiler guarantee: ±inf and `-0.0` results are bit-identical across
//! every variant and the references (swapping the two operands of one
//! `mul`/`add` — which the compiler may do per kernel instantiation —
//! never changes a finite, zero-signed or infinite result), and NaN
//! *placement* is identical (whether an element is NaN is determined by
//! the operation sequence alone). The sign/payload bits of a NaN are the
//! one thing not pinned: LLVM treats them as unspecified, so two
//! compilations of the same mul/add chain may canonicalize a freshly
//! created or propagated NaN differently — the autovectorized reference
//! loop itself does. The property suite therefore feeds NaN payloads,
//! ±inf and `-0.0` through every variant asserting NaN positions plus
//! exact bits of every non-NaN element. (Training data is finite, so the
//! engine-level byte-identity guarantees are unaffected.)
//!
//! Kernels whose reference skips exact-zero `A` elements
//! ([`crate::ops::matmul_reference`], [`crate::ops::matmul_tn_reference`])
//! replicate the skip exactly, but hoist its cost out of the hot loop:
//! each `mr`-subtile is scanned for zeros once, zero-free subtiles run an
//! unguarded microkernel (a guard that can never fire changes nothing),
//! and only subtiles containing zeros take the guarded per-`(row, k)` skip
//! — where the skip recoups its branch cost by eliding work, e.g. on
//! ReLU-masked gradients. The packed kernels are therefore bit-identical
//! to the references, to the retained blocked kernels, and to themselves
//! at any thread count (parallel row tiles write disjoint rows at fixed
//! boundaries).
//!
//! # Reuse and caching
//!
//! Both pack types fully overwrite their buffer on every `pack_*` call
//! (including the zero padding), so dirty reused buffers are safe — the
//! property suite packs through deliberately dirty buffers. Both carry a
//! validity flag: a *cached* pack of a weight matrix is reused across
//! calls and invalidated when the weights change (`ensure_*` repacks only
//! when needed), and the [`crate::Workspace`] pack pools invalidate every
//! pack on the way in, so a pool hit can never hand stale contents — or a
//! stale *layout* — to a kernel.

// The only module in the crate allowed to use `unsafe`: the `std::arch`
// SIMD intrinsics below are dispatched strictly behind
// `is_x86_feature_detected!` (see [`active_isa`] and the dispatch
// functions), and every kernel's slice-length preconditions are
// established by the drivers in this file.
#![allow(unsafe_code)]

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use aergia_telemetry::LazyCounter;

use crate::ops::{require_rank2, run_row_tiles};
use crate::{Tensor, TensorError};

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------
//
// GEMM runs on pool worker threads, so only commutative counters are
// touched here (one relaxed atomic add per driver call or row tile —
// nothing per multiply). Span events would race the federator thread's
// deterministic stream and are deliberately absent. The autotuner
// additionally records its (wall-clock-measured) winner per shape as a
// snapshot-only gauge in [`tuned_variant`].

/// Driver entries by GEMM form (`matmul` / `matmul_nt` / `matmul_tn`).
static GEMM_CALLS: [LazyCounter; 3] = [
    LazyCounter::new("aergia_gemm_calls_total{op=\"nn\"}"),
    LazyCounter::new("aergia_gemm_calls_total{op=\"nt\"}"),
    LazyCounter::new("aergia_gemm_calls_total{op=\"tn\"}"),
];

/// Driver entries by dispatched ISA tier (which microkernel family ran).
static GEMM_DISPATCH: [LazyCounter; 3] = [
    LazyCounter::new("aergia_gemm_dispatch_total{isa=\"scalar\"}"),
    LazyCounter::new("aergia_gemm_dispatch_total{isa=\"avx2\"}"),
    LazyCounter::new("aergia_gemm_dispatch_total{isa=\"avx512\"}"),
];

/// Subtiles that scanned zero-free and ran the unguarded microkernel.
static GEMM_SUBTILES_DENSE: LazyCounter = LazyCounter::new("aergia_gemm_subtiles_dense_total");
/// Subtiles that contained zeros and took the guarded skip kernel.
static GEMM_SUBTILES_GUARDED: LazyCounter = LazyCounter::new("aergia_gemm_subtiles_guarded_total");

fn count_gemm_call(op: GemmOp, variant: KernelVariant) {
    let op_idx = match op {
        GemmOp::Nn => 0,
        GemmOp::Nt => 1,
        GemmOp::Tn => 2,
    };
    GEMM_CALLS[op_idx].add(1);
    let isa_idx = match variant.isa {
        Isa::Scalar => 0,
        Isa::Avx2 => 1,
        Isa::Avx512 => 2,
    };
    GEMM_DISPATCH[isa_idx].add(1);
}

/// Portable microkernel register-tile height: output rows accumulated at
/// once by the scalar baseline variant.
///
/// `MR × NR` f32 accumulators plus one `NR`-wide `B` vector and `MR`
/// broadcast values fit the 16 SIMD registers of baseline x86-64.
pub const MR: usize = 4;

/// Portable microkernel register-tile width: output columns per `B` panel
/// in the scalar baseline variant (two 128-bit lanes, one 256-bit with
/// AVX).
pub const NR: usize = 8;

/// Largest `mr` any [`KernelVariant`] uses. [`crate::ops`] keeps its
/// parallel row-tile size a multiple of this so tile boundaries coincide
/// with subtile boundaries for every variant.
pub const MR_MAX: usize = 8;

/// Largest `nr` any [`KernelVariant`] uses.
pub const NR_MAX: usize = 32;

/// Panelling granularity (along `k`) of the retained *blocked* oracle
/// kernels ([`crate::ops::matmul_blocked_into`] & friends). The packed
/// layout stores each column panel as one full-`k` slab.
pub const K_BLOCK: usize = 128;

/// Scratch accumulator sized for the largest register tile; kernels write
/// `acc[r·nr + c]` for their own `mr × nr` live region.
type Acc = [f32; MR_MAX * NR_MAX];

// ---------------------------------------------------------------------------
// ISA detection
// ---------------------------------------------------------------------------

/// Instruction-set tier a kernel variant is implemented with. Ordered:
/// every CPU that has a tier has all lower tiers (AVX-512F implies AVX2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Scalar-ordered loops (autovectorized where the compiler can).
    Scalar,
    /// 256-bit `std::arch` kernels behind `is_x86_feature_detected!("avx2")`.
    Avx2,
    /// 512-bit kernels behind `is_x86_feature_detected!("avx512f")`.
    Avx512,
}

impl Isa {
    /// Short label for benches and logs (`"scalar"`, `"avx2"`, `"avx512"`).
    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

/// The best instruction-set tier this process will dispatch to, detected
/// once: the `AERGIA_FORCE_SCALAR` escape hatch (any value but `0`) pins
/// it to [`Isa::Scalar`], otherwise runtime feature detection picks the
/// widest tier the CPU offers. Forcing scalar also steers the autotuner
/// to the portable variant, so every pack in the process gets the
/// baseline `4×8` layout and the exact pre-SIMD code path runs.
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        if std::env::var_os("AERGIA_FORCE_SCALAR").is_some_and(|v| v != *"0") {
            return Isa::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Scalar
    })
}

// ---------------------------------------------------------------------------
// Kernel variants
// ---------------------------------------------------------------------------

/// A register-tile geometry plus the ISA tier that executes it. Packs are
/// tagged with the variant they were laid out for; the GEMM drivers
/// dispatch on the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelVariant {
    /// Output rows per register tile. Must divide the parallel row-tile
    /// size ([`MR_MAX`] bounds it), i.e. 4 or 8.
    pub mr: usize,
    /// Output columns per `B` panel (8, 16 or 32); this is baked into the
    /// pack layout.
    pub nr: usize,
    /// ISA tier of the microkernel that consumes the layout.
    pub isa: Isa,
}

impl KernelVariant {
    /// The portable scalar `4×8` variant — the layout `pack`/`ensure`
    /// produce by default and the only variant a scalar-forced process
    /// tunes to.
    pub const PORTABLE: KernelVariant = KernelVariant { mr: MR, nr: NR, isa: Isa::Scalar };

    /// The variant used without measurement: for shapes too small to be
    /// worth timing, and as the autotuner's starting point.
    pub fn default_for(isa: Isa) -> KernelVariant {
        match isa {
            Isa::Scalar => KernelVariant::PORTABLE,
            Isa::Avx2 => KernelVariant { mr: 4, nr: 16, isa: Isa::Avx2 },
            Isa::Avx512 => KernelVariant { mr: 8, nr: 16, isa: Isa::Avx512 },
        }
    }

    /// The variants the autotuner may pick from on a given tier, fastest
    /// guess first. Every candidate's `mr` divides the parallel row-tile
    /// size and its `nr` is a supported panel width.
    pub fn candidates(isa: Isa) -> &'static [KernelVariant] {
        const SCALAR: &[KernelVariant] = &[KernelVariant::PORTABLE];
        const AVX2: &[KernelVariant] = &[
            KernelVariant { mr: 4, nr: 16, isa: Isa::Avx2 },
            KernelVariant { mr: 8, nr: 8, isa: Isa::Avx2 },
            KernelVariant { mr: 4, nr: 8, isa: Isa::Avx2 },
            KernelVariant::PORTABLE,
        ];
        const AVX512: &[KernelVariant] = &[
            KernelVariant { mr: 8, nr: 32, isa: Isa::Avx512 },
            KernelVariant { mr: 8, nr: 16, isa: Isa::Avx512 },
            KernelVariant { mr: 4, nr: 16, isa: Isa::Avx512 },
            KernelVariant::PORTABLE,
        ];
        match isa {
            Isa::Scalar => SCALAR,
            Isa::Avx2 => AVX2,
            Isa::Avx512 => AVX512,
        }
    }
}

impl Default for KernelVariant {
    fn default() -> Self {
        KernelVariant::PORTABLE
    }
}

/// A `B` operand packed into zero-padded `nr`-wide column panels (see the
/// [module docs](self) for the layout). The pack is tagged with the
/// [`KernelVariant`] it was laid out for; the drivers dispatch on the tag.
///
/// The buffer is reusable: every `pack_*` call rewrites it entirely for
/// the new operand, growing the allocation only on a high-water mark.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{gemm::PackedB, ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::ones(&[3, 4]);
/// let b = Tensor::ones(&[4, 5]);
/// let mut pb = PackedB::new();
/// pb.pack(&b)?;
/// let mut out = Tensor::default();
/// ops::matmul_packed_into(&a, &pb, &mut out)?;
/// assert_eq!(out, ops::matmul(&a, &b)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    buf: Vec<f32>,
    k: usize,
    n: usize,
    variant: KernelVariant,
    transposed: bool,
    valid: bool,
}

impl PackedB {
    /// Creates an empty (invalid) pack; the first `pack_*` call sizes it.
    pub fn new() -> Self {
        PackedB::default()
    }

    /// Whether the pack currently holds a packed operand (a fresh or
    /// [`PackedB::invalidate`]d pack is not valid).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Logical shared dimension `k` of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count `n` of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The kernel variant this pack is laid out for (its `nr` is the
    /// panel width).
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Marks the pack stale (e.g. after the source matrix changed) while
    /// keeping the buffer for the next `pack_*`/`ensure_*` call.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    fn reset_layout(&mut self, k: usize, n: usize, variant: KernelVariant, transposed: bool) {
        self.k = k;
        self.n = n;
        self.variant = variant;
        self.transposed = transposed;
        // Contents are fully rewritten by the caller (padding included),
        // so the resize fill value is never observed.
        self.buf.resize(n.div_ceil(variant.nr) * variant.nr * k, 0.0);
    }

    /// Packs a row-major `k×n` matrix into the portable
    /// ([`KernelVariant::PORTABLE`]) layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack(&mut self, b: &Tensor) -> Result<(), TensorError> {
        self.pack_with(b, KernelVariant::PORTABLE)
    }

    /// Packs a row-major `k×n` matrix into `variant`'s panel layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_with(&mut self, b: &Tensor, variant: KernelVariant) -> Result<(), TensorError> {
        let (k, n) = require_rank2("pack_b", b)?;
        self.reset_layout(k, n, variant, false);
        let nr = variant.nr;
        let bd = b.data();
        // Row-outer, panel-inner: `B` is read once, sequentially, and the
        // writes fan out over one stream per panel — the panel-outer order
        // would re-stream the whole matrix once per panel, which dominates
        // the pack cost for the wide per-batch operands (im2col matrices)
        // this path packs every training step.
        let panels = n.div_ceil(nr);
        let stride = k * nr;
        for kk in 0..k {
            let srow = &bd[kk * n..(kk + 1) * n];
            for jp in 0..panels {
                let col0 = jp * nr;
                let ncols = (n - col0).min(nr);
                let dst = &mut self.buf[jp * stride + kk * nr..jp * stride + (kk + 1) * nr];
                dst[..ncols].copy_from_slice(&srow[col0..col0 + ncols]);
                dst[ncols..].fill(0.0);
            }
        }
        self.valid = true;
        Ok(())
    }

    /// Packs the *transpose* of a row-major `n×k` matrix, i.e. the packed
    /// logical operand is `bᵀ` (`k×n`), into the portable layout. This is
    /// how a `matmul_nt` `B` operand (a `[rows, k]` weight matrix) becomes
    /// column panels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed(&mut self, b: &Tensor) -> Result<(), TensorError> {
        self.pack_transposed_with(b, KernelVariant::PORTABLE)
    }

    /// [`PackedB::pack_transposed`] into `variant`'s panel layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed_with(
        &mut self,
        b: &Tensor,
        variant: KernelVariant,
    ) -> Result<(), TensorError> {
        let (n, k) = require_rank2("pack_bt", b)?;
        self.reset_layout(k, n, variant, true);
        let nr = variant.nr;
        let bd = b.data();
        for (jp, panel) in self.buf.chunks_exact_mut(k * nr).enumerate() {
            let col0 = jp * nr;
            let ncols = (n - col0).min(nr);
            for c in 0..nr {
                if c < ncols {
                    let src = &bd[(col0 + c) * k..(col0 + c + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * nr + c] = v;
                    }
                } else {
                    for kk in 0..k {
                        panel[kk * nr + c] = 0.0;
                    }
                }
            }
        }
        self.valid = true;
        Ok(())
    }

    /// Repacks only if the pack is stale or shaped for a different
    /// operand — the cache-friendly entry point for weight matrices that
    /// rarely change. A valid pack is kept *whatever its variant* (every
    /// variant computes identical bits); a repack uses the active ISA's
    /// default variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (k, n) = require_rank2("pack_b", b)?;
        if self.valid && !self.transposed && self.k == k && self.n == n {
            return Ok(());
        }
        self.pack_with(b, KernelVariant::default_for(active_isa()))
    }

    /// [`PackedB::ensure`] for a specific variant: repacks when stale,
    /// shaped for a different operand, *or laid out for a different
    /// variant* — the entry point for autotuned layer caches.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure_with(&mut self, b: &Tensor, variant: KernelVariant) -> Result<(), TensorError> {
        let (k, n) = require_rank2("pack_b", b)?;
        if self.valid && !self.transposed && self.k == k && self.n == n && self.variant == variant {
            return Ok(());
        }
        self.pack_with(b, variant)
    }

    /// [`PackedB::pack_transposed`] only if the pack is stale or shaped
    /// for a different operand (variant-agnostic, like [`PackedB::ensure`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure_transposed(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (n, k) = require_rank2("pack_bt", b)?;
        if self.valid && self.transposed && self.k == k && self.n == n {
            return Ok(());
        }
        self.pack_transposed_with(b, KernelVariant::default_for(active_isa()))
    }

    /// [`PackedB::ensure_transposed`] for a specific variant (see
    /// [`PackedB::ensure_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure_transposed_with(
        &mut self,
        b: &Tensor,
        variant: KernelVariant,
    ) -> Result<(), TensorError> {
        let (n, k) = require_rank2("pack_bt", b)?;
        if self.valid && self.transposed && self.k == k && self.n == n && self.variant == variant {
            return Ok(());
        }
        self.pack_transposed_with(b, variant)
    }

    fn panel(&self, jp: usize) -> &[f32] {
        let nr = self.variant.nr;
        &self.buf[jp * self.k * nr..(jp + 1) * self.k * nr]
    }
}

/// An `A` operand packed into zero-padded `mr`-row tiles laid `k`-major
/// (see the [module docs](self)); used by [`crate::ops::matmul_tn_packed_into`],
/// whose `A` is stored transposed and would otherwise be read with an
/// `m`-element stride per `k` step. Tagged with its [`KernelVariant`]
/// like [`PackedB`], and carrying the same validity flag so pooled packs
/// are invalidated between users.
///
/// Every pack call fully rewrites the buffer, so dirty reuse through a
/// [`crate::Workspace`] pool is safe.
#[derive(Debug, Clone, Default)]
pub struct PackedA {
    buf: Vec<f32>,
    m: usize,
    k: usize,
    variant: KernelVariant,
    valid: bool,
}

impl PackedA {
    /// Creates an empty (invalid) pack; the first pack call sizes it.
    pub fn new() -> Self {
        PackedA::default()
    }

    /// Logical row count `m` of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical shared dimension `k` of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel variant this pack is laid out for (its `mr` is the tile
    /// height).
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Whether the pack currently holds a packed operand.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Marks the pack stale while keeping the buffer for the next pack.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Packs the *transpose* of a row-major `k×m` matrix into portable
    /// ([`MR`]-row) tiles: logical row `i = t·mr + r` of `aᵀ` lands in
    /// tile `t` at `tile[kk·mr + r]`, with the ragged tail tile
    /// zero-padded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed(&mut self, a: &Tensor) -> Result<(), TensorError> {
        self.pack_transposed_with(a, KernelVariant::PORTABLE)
    }

    /// [`PackedA::pack_transposed`] into `variant`'s tile layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed_with(
        &mut self,
        a: &Tensor,
        variant: KernelVariant,
    ) -> Result<(), TensorError> {
        let (k, m) = require_rank2("pack_at", a)?;
        self.m = m;
        self.k = k;
        self.variant = variant;
        let mr = variant.mr;
        // Fully rewritten below (padding included); the fill value is
        // never observed.
        self.buf.resize(m.div_ceil(mr) * mr * k, 0.0);
        let ad = a.data();
        for (t, tile) in self.buf.chunks_exact_mut(mr * k).enumerate() {
            let row0 = t * mr;
            let mrows = (m - row0).min(mr);
            for (kk, dst) in tile.chunks_exact_mut(mr).enumerate() {
                let src = &ad[kk * m + row0..kk * m + row0 + mrows];
                dst[..mrows].copy_from_slice(src);
                dst[mrows..].fill(0.0);
            }
        }
        self.valid = true;
        Ok(())
    }

    fn tile(&self, t: usize) -> &[f32] {
        let mr = self.variant.mr;
        &self.buf[t * mr * self.k..(t + 1) * mr * self.k]
    }
}

// ---------------------------------------------------------------------------
// Scalar microkernels
// ---------------------------------------------------------------------------

/// One accumulator row of the portable register tile: `acc += av · b`. A
/// fixed-size `b` and straight-line updates keep the row SROA-promoted to
/// registers.
///
/// With `SKIP`, the whole row update is skipped for an exact-zero `av`,
/// replicating the reference kernels' skip-zero fast path per `(row, k)`.
/// The drivers only instantiate `SKIP = true` for subtiles that actually
/// contain zeros (see [`gemm_packed`]), so dense operands never pay for
/// the guard.
#[inline(always)]
fn fma_row<const SKIP: bool>(acc: &mut [f32; NR], av: f32, b: &[f32; NR]) {
    if SKIP && av == 0.0 {
        return;
    }
    for (o, &bv) in acc.iter_mut().zip(b) {
        *o += av * bv;
    }
}

/// Whether the first `mr` rows of a subtile are zero-free, i.e. the
/// skip-zero guard can never fire and the unguarded microkernel
/// instantiation is bit-exact. One scan per subtile buys guard-free inner
/// loops across every `B` panel.
#[inline(always)]
fn rows_zero_free(rows: &[&[f32]; MR_MAX], mr: usize) -> bool {
    rows[..mr].iter().all(|row| row.iter().all(|&v| v != 0.0))
}

/// The portable `4×8` register-tile microkernel over row-major `A` rows.
///
/// `rows` are the source rows (a shorter tail tile passes its last row
/// repeatedly; the duplicate accumulators are dropped at write-back),
/// each exactly `k` long. The four rows advance through `k` together:
/// their accumulator chains are independent, so one row's FP-add latency
/// hides behind the others', while each individual output element still
/// accumulates strictly ascending-`k`. The accumulators live in plain
/// local arrays so scalar replacement keeps them in registers for the
/// whole `k` walk; the kernel fully overwrites its `4×8` region of `acc`.
#[inline(always)]
fn scalar_rows_4x8<const SKIP: bool>(rows: &[&[f32]; MR_MAX], panel: &[f32], acc: &mut Acc) {
    let (a0, a1, a2, a3) = (rows[0], rows[1], rows[2], rows[3]);
    let mut x0 = [0.0f32; NR];
    let mut x1 = [0.0f32; NR];
    let mut x2 = [0.0f32; NR];
    let mut x3 = [0.0f32; NR];
    let iter = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
    for ((((&v0, &v1), &v2), &v3), b) in iter {
        let b: &[f32; NR] = b.try_into().expect("chunks_exact yields NR-sized chunks");
        fma_row::<SKIP>(&mut x0, v0, b);
        fma_row::<SKIP>(&mut x1, v1, b);
        fma_row::<SKIP>(&mut x2, v2, b);
        fma_row::<SKIP>(&mut x3, v3, b);
    }
    acc[..NR].copy_from_slice(&x0);
    acc[NR..2 * NR].copy_from_slice(&x1);
    acc[2 * NR..3 * NR].copy_from_slice(&x2);
    acc[3 * NR..4 * NR].copy_from_slice(&x3);
}

/// [`scalar_rows_4x8`] over a [`PackedA`] tile (`k`-major, 4-wide): the
/// per-`k` `A` values come from one contiguous 4-vector of the tile
/// instead of four row pointers.
#[inline(always)]
fn scalar_tile_4x8<const SKIP: bool>(tile: &[f32], panel: &[f32], acc: &mut Acc) {
    let mut x0 = [0.0f32; NR];
    let mut x1 = [0.0f32; NR];
    let mut x2 = [0.0f32; NR];
    let mut x3 = [0.0f32; NR];
    for (avals, b) in tile.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
        let b: &[f32; NR] = b.try_into().expect("chunks_exact yields NR-sized chunks");
        fma_row::<SKIP>(&mut x0, avals[0], b);
        fma_row::<SKIP>(&mut x1, avals[1], b);
        fma_row::<SKIP>(&mut x2, avals[2], b);
        fma_row::<SKIP>(&mut x3, avals[3], b);
    }
    acc[..NR].copy_from_slice(&x0);
    acc[NR..2 * NR].copy_from_slice(&x1);
    acc[2 * NR..3 * NR].copy_from_slice(&x2);
    acc[3 * NR..4 * NR].copy_from_slice(&x3);
}

/// Scalar microkernel for *any* tile geometry: the correctness fallback
/// that lets a scalar-only process (or a `AERGIA_FORCE_SCALAR` run)
/// execute packs laid out for SIMD variants. Same ascending-`k` mul/add
/// chain per element, so same bits.
fn scalar_rows_any<const SKIP: bool>(
    mr: usize,
    nr: usize,
    rows: &[&[f32]; MR_MAX],
    k: usize,
    panel: &[f32],
    acc: &mut Acc,
) {
    acc[..mr * nr].fill(0.0);
    for kk in 0..k {
        let b = &panel[kk * nr..(kk + 1) * nr];
        for (r, row) in rows[..mr].iter().enumerate() {
            let av = row[kk];
            if SKIP && av == 0.0 {
                continue;
            }
            for (o, &bv) in acc[r * nr..r * nr + nr].iter_mut().zip(b) {
                *o += av * bv;
            }
        }
    }
}

/// [`scalar_rows_any`] over a [`PackedA`] tile.
fn scalar_tile_any<const SKIP: bool>(
    mr: usize,
    nr: usize,
    tile: &[f32],
    k: usize,
    panel: &[f32],
    acc: &mut Acc,
) {
    acc[..mr * nr].fill(0.0);
    for kk in 0..k {
        let avals = &tile[kk * mr..(kk + 1) * mr];
        let b = &panel[kk * nr..(kk + 1) * nr];
        for (r, &av) in avals.iter().enumerate() {
            if SKIP && av == 0.0 {
                continue;
            }
            for (o, &bv) in acc[r * nr..r * nr + nr].iter_mut().zip(b) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit-SIMD microkernels (x86-64)
// ---------------------------------------------------------------------------

/// Thin `#[target_feature]` wrappers over the 256-bit intrinsics so the
/// kernel macro below reads identically for both vector widths.
#[cfg(target_arch = "x86_64")]
mod v256 {
    use core::arch::x86_64::*;

    pub type V = __m256;
    pub const LANES: usize = 8;

    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn zero() -> V {
        _mm256_setzero_ps()
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn load(p: *const f32) -> V {
        _mm256_loadu_ps(p)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn set1(x: f32) -> V {
        _mm256_set1_ps(x)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul(a: V, b: V) -> V {
        _mm256_mul_ps(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn add(a: V, b: V) -> V {
        _mm256_add_ps(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn store(p: *mut f32, v: V) {
        _mm256_storeu_ps(p, v)
    }
}

/// 512-bit twin of [`v256`].
#[cfg(target_arch = "x86_64")]
mod v512 {
    use core::arch::x86_64::*;

    pub type V = __m512;
    pub const LANES: usize = 16;

    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn zero() -> V {
        _mm512_setzero_ps()
    }
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn load(p: *const f32) -> V {
        _mm512_loadu_ps(p as *const _)
    }
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn set1(x: f32) -> V {
        _mm512_set1_ps(x)
    }
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn mul(a: V, b: V) -> V {
        _mm512_mul_ps(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn add(a: V, b: V) -> V {
        _mm512_add_ps(a, b)
    }
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn store(p: *mut f32, v: V) {
        _mm512_storeu_ps(p as *mut _, v)
    }
}

/// Generates one explicit-SIMD microkernel pair (rows-sourced and
/// packed-`A`-tile-sourced) for an `mr × (nv·LANES)` register tile.
///
/// The generated kernels follow the exact scalar recipe: per `k` step,
/// load the panel's `nv` vectors once, broadcast each live `A` value, and
/// do a separate `mul` then `add` into that row's accumulators — `vmulps`
/// and `vaddps` round per lane exactly like scalar `*` and `+`, so the
/// result is bit-identical to the scalar kernels for every input
/// (non-finite values included). `SKIP` replicates the per-`(row, k)`
/// exact-zero skip. Accumulator/`B` arrays are indexed only by
/// constant-bounded loops, which LLVM fully unrolls and SROAs into
/// registers.
#[cfg(target_arch = "x86_64")]
macro_rules! simd_kernel_pair {
    ($rows_name:ident, $tile_name:ident, $feat:literal, $v:ident, $mr:literal, $nv:literal) => {
        /// # Safety
        ///
        /// The CPU must support the `target_feature` this kernel is
        /// compiled with; `rows[..mr]` must each hold at least `k`
        /// elements and `panel` at least `k·nr`.
        #[target_feature(enable = $feat)]
        unsafe fn $rows_name<const SKIP: bool>(
            rows: &[&[f32]; MR_MAX],
            k: usize,
            panel: &[f32],
            acc: &mut Acc,
        ) {
            const MRK: usize = $mr;
            const NV: usize = $nv;
            let nr = NV * $v::LANES;
            let pp = panel.as_ptr();
            let mut c = [[$v::zero(); NV]; MRK];
            for kk in 0..k {
                let mut b = [$v::zero(); NV];
                for (v, bv) in b.iter_mut().enumerate() {
                    *bv = $v::load(pp.add(kk * nr + v * $v::LANES));
                }
                for (r, cr) in c.iter_mut().enumerate() {
                    let av = *rows.get_unchecked(r).get_unchecked(kk);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    let avv = $v::set1(av);
                    for (cv, &bv) in cr.iter_mut().zip(&b) {
                        *cv = $v::add(*cv, $v::mul(avv, bv));
                    }
                }
            }
            let ap = acc.as_mut_ptr();
            for (r, cr) in c.iter().enumerate() {
                for (v, &cv) in cr.iter().enumerate() {
                    $v::store(ap.add(r * nr + v * $v::LANES), cv);
                }
            }
        }

        /// Packed-`A` twin: per-`k` values come from one contiguous
        /// `mr`-vector of the tile.
        ///
        /// # Safety
        ///
        /// As the rows-sourced kernel; `tile` must hold at least `k·mr`
        /// elements.
        #[target_feature(enable = $feat)]
        unsafe fn $tile_name<const SKIP: bool>(
            tile: &[f32],
            k: usize,
            panel: &[f32],
            acc: &mut Acc,
        ) {
            const MRK: usize = $mr;
            const NV: usize = $nv;
            let nr = NV * $v::LANES;
            let tp = tile.as_ptr();
            let pp = panel.as_ptr();
            let mut c = [[$v::zero(); NV]; MRK];
            for kk in 0..k {
                let mut b = [$v::zero(); NV];
                for (v, bv) in b.iter_mut().enumerate() {
                    *bv = $v::load(pp.add(kk * nr + v * $v::LANES));
                }
                for (r, cr) in c.iter_mut().enumerate() {
                    let av = *tp.add(kk * MRK + r);
                    if SKIP && av == 0.0 {
                        continue;
                    }
                    let avv = $v::set1(av);
                    for (cv, &bv) in cr.iter_mut().zip(&b) {
                        *cv = $v::add(*cv, $v::mul(avv, bv));
                    }
                }
            }
            let ap = acc.as_mut_ptr();
            for (r, cr) in c.iter().enumerate() {
                for (v, &cv) in cr.iter().enumerate() {
                    $v::store(ap.add(r * nr + v * $v::LANES), cv);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx2_rows_4x8, avx2_tile_4x8, "avx2", v256, 4, 1);
#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx2_rows_4x16, avx2_tile_4x16, "avx2", v256, 4, 2);
#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx2_rows_8x8, avx2_tile_8x8, "avx2", v256, 8, 1);
#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx512_rows_8x16, avx512_tile_8x16, "avx512f", v512, 8, 1);
#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx512_rows_8x32, avx512_tile_8x32, "avx512f", v512, 8, 2);
#[cfg(target_arch = "x86_64")]
simd_kernel_pair!(avx512_rows_4x16, avx512_tile_4x16, "avx512f", v512, 4, 1);

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Runs the rows-sourced microkernel for `variant` on one subtile/panel
/// pair, falling back to the generic scalar kernel when the variant's ISA
/// is not active in this process (wrong CPU or `AERGIA_FORCE_SCALAR`) —
/// the fallback computes identical bits, just slower.
#[inline(always)]
fn run_rows_kernel<const SKIP: bool>(
    variant: KernelVariant,
    rows: &[&[f32]; MR_MAX],
    k: usize,
    panel: &[f32],
    acc: &mut Acc,
) {
    #[cfg(target_arch = "x86_64")]
    if variant.isa <= active_isa() {
        // SAFETY: `active_isa()` confirmed the feature at runtime; slice
        // lengths are guaranteed by the drivers (rows of length k, panel
        // of length k·nr).
        unsafe {
            match (variant.isa, variant.mr, variant.nr) {
                (Isa::Avx2, 4, 8) => return avx2_rows_4x8::<SKIP>(rows, k, panel, acc),
                (Isa::Avx2, 4, 16) => return avx2_rows_4x16::<SKIP>(rows, k, panel, acc),
                (Isa::Avx2, 8, 8) => return avx2_rows_8x8::<SKIP>(rows, k, panel, acc),
                (Isa::Avx512, 8, 16) => return avx512_rows_8x16::<SKIP>(rows, k, panel, acc),
                (Isa::Avx512, 8, 32) => return avx512_rows_8x32::<SKIP>(rows, k, panel, acc),
                (Isa::Avx512, 4, 16) => return avx512_rows_4x16::<SKIP>(rows, k, panel, acc),
                _ => {}
            }
        }
    }
    if (variant.mr, variant.nr) == (MR, NR) {
        scalar_rows_4x8::<SKIP>(rows, panel, acc);
    } else {
        scalar_rows_any::<SKIP>(variant.mr, variant.nr, rows, k, panel, acc);
    }
}

/// Packed-`A`-tile twin of [`run_rows_kernel`].
#[inline(always)]
fn run_tile_kernel<const SKIP: bool>(
    variant: KernelVariant,
    tile: &[f32],
    k: usize,
    panel: &[f32],
    acc: &mut Acc,
) {
    #[cfg(target_arch = "x86_64")]
    if variant.isa <= active_isa() {
        // SAFETY: as in `run_rows_kernel`.
        unsafe {
            match (variant.isa, variant.mr, variant.nr) {
                (Isa::Avx2, 4, 8) => return avx2_tile_4x8::<SKIP>(tile, k, panel, acc),
                (Isa::Avx2, 4, 16) => return avx2_tile_4x16::<SKIP>(tile, k, panel, acc),
                (Isa::Avx2, 8, 8) => return avx2_tile_8x8::<SKIP>(tile, k, panel, acc),
                (Isa::Avx512, 8, 16) => return avx512_tile_8x16::<SKIP>(tile, k, panel, acc),
                (Isa::Avx512, 8, 32) => return avx512_tile_8x32::<SKIP>(tile, k, panel, acc),
                (Isa::Avx512, 4, 16) => return avx512_tile_4x16::<SKIP>(tile, k, panel, acc),
                _ => {}
            }
        }
    }
    if (variant.mr, variant.nr) == (MR, NR) {
        scalar_tile_4x8::<SKIP>(tile, panel, acc);
    } else {
        scalar_tile_any::<SKIP>(variant.mr, variant.nr, tile, k, panel, acc);
    }
}

/// Writes the live part of a register tile into the output rows.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn write_back(
    acc: &Acc,
    nr: usize,
    rows: &mut [f32],
    n: usize,
    r0: usize,
    mrows: usize,
    col0: usize,
    ncols: usize,
) {
    for r in 0..mrows {
        let orow = &mut rows[(r0 + r) * n + col0..(r0 + r) * n + col0 + ncols];
        orow.copy_from_slice(&acc[r * nr..r * nr + ncols]);
    }
}

/// Shared driver for the row-major-`A` packed kernels (`matmul` /
/// `matmul_nt`): parallel [`run_row_tiles`] over the output, then per tile
/// an `mr`-subtile-outer, `B`-panel-inner walk, dispatching on the pack's
/// [`KernelVariant`] tag. Subtile-outer order lets a `SKIP` kernel scan
/// each subtile's rows for zeros *once*: zero-free subtiles (the common
/// case on dense operands) run the unguarded microkernel — bit-exact
/// because a guard that never fires contributes nothing — and only
/// subtiles that actually contain zeros pay for the guarded instantiation
/// (where the skip then saves real work, e.g. on ReLU-masked gradients).
pub(crate) fn gemm_packed<const SKIP: bool>(ad: &[f32], k: usize, pb: &PackedB, od: &mut [f32]) {
    let n = pb.n;
    let m = od.len() / n.max(1);
    count_gemm_call(if SKIP { GemmOp::Nn } else { GemmOp::Nt }, pb.variant);
    run_row_tiles(od, n, m * n * k, |first_row, rows| {
        gemm_rows_tile::<SKIP>(ad, k, pb, first_row, rows);
    });
}

/// [`gemm_packed`] minus the telemetry counters — the autotuner's trial
/// calls run through this so synthetic tuning work (which happens only
/// on the *first* same-shape call per process) never perturbs the
/// deterministic call/subtile counts two same-seed runs must share.
fn gemm_packed_untracked<const SKIP: bool>(ad: &[f32], k: usize, pb: &PackedB, od: &mut [f32]) {
    let n = pb.n;
    let m = od.len() / n.max(1);
    run_row_tiles(od, n, m * n * k, |first_row, rows| {
        gemm_rows_tile_impl::<SKIP, false>(ad, k, pb, first_row, rows);
    });
}

/// One row tile of [`gemm_packed`]: computes output rows
/// `first_row .. first_row + rows.len()/n` of `A · packed(B)`. Public to
/// the crate so the multi-slab driver
/// ([`crate::ops::matmul_nt_packed_multi_into`]) can spawn every slab's
/// tiles into a single pool scope while computing bits identical to
/// per-slab [`gemm_packed`] calls.
pub(crate) fn gemm_rows_tile<const SKIP: bool>(
    ad: &[f32],
    k: usize,
    pb: &PackedB,
    first_row: usize,
    rows: &mut [f32],
) {
    gemm_rows_tile_impl::<SKIP, true>(ad, k, pb, first_row, rows);
}

/// [`gemm_rows_tile`] with subtile accounting compile-time selectable
/// (`TRACK = false` for the autotuner's untracked trial calls).
fn gemm_rows_tile_impl<const SKIP: bool, const TRACK: bool>(
    ad: &[f32],
    k: usize,
    pb: &PackedB,
    first_row: usize,
    rows: &mut [f32],
) {
    let variant = pb.variant;
    let (mr, nr) = (variant.mr, variant.nr);
    let n = pb.n;
    let nrows = rows.len() / n;
    let mut acc = [0.0f32; MR_MAX * NR_MAX];
    // Skip-zero accounting accumulates in locals and flushes as two
    // atomic adds per row tile — nothing per subtile or per multiply.
    let (mut dense_subtiles, mut guarded_subtiles) = (0u64, 0u64);
    let mut r0 = 0;
    while r0 < nrows {
        let mrows = (nrows - r0).min(mr);
        // A shorter tail subtile repeats its last row; the duplicate
        // accumulator rows are dropped at write-back.
        let row = |r: usize| {
            let i = first_row + r0 + r.min(mrows - 1);
            &ad[i * k..(i + 1) * k]
        };
        let mut tile_rows: [&[f32]; MR_MAX] = [row(0); MR_MAX];
        for (r, slot) in tile_rows.iter_mut().enumerate().take(mr).skip(1) {
            *slot = row(r);
        }
        let dense = !SKIP || rows_zero_free(&tile_rows, mr);
        if dense {
            dense_subtiles += 1;
        } else {
            guarded_subtiles += 1;
        }
        for jp in 0..n.div_ceil(nr) {
            let panel = pb.panel(jp);
            let col0 = jp * nr;
            let ncols = (n - col0).min(nr);
            if dense {
                run_rows_kernel::<false>(variant, &tile_rows, k, panel, &mut acc);
            } else {
                run_rows_kernel::<true>(variant, &tile_rows, k, panel, &mut acc);
            }
            write_back(&acc, nr, rows, n, r0, mrows, col0, ncols);
        }
        r0 += mrows;
    }
    if TRACK {
        GEMM_SUBTILES_DENSE.add(dense_subtiles);
        GEMM_SUBTILES_GUARDED.add(guarded_subtiles);
    }
}

/// Driver for the packed-`A` kernel (`matmul_tn`). Row-tile boundaries are
/// multiples of every variant's `mr` (the parallel tile size is a multiple
/// of [`MR_MAX`]), so output sub-tiles map 1:1 onto [`PackedA`] tiles.
///
/// # Panics
///
/// Panics if the packs were laid out for different kernel variants — the
/// tile height comes from `pa` and the panel width from `pb`, so a mixed
/// pair has no kernel to run on.
pub(crate) fn gemm_packed_tn(pa: &PackedA, pb: &PackedB, od: &mut [f32]) {
    count_gemm_call(GemmOp::Tn, pa.variant);
    gemm_packed_tn_impl::<true>(pa, pb, od);
}

/// Body of [`gemm_packed_tn`] with telemetry accounting compile-time
/// selectable; `TRACK = false` is the autotuner's trial path (see
/// [`gemm_packed_untracked`] for why trials must not count).
fn gemm_packed_tn_impl<const TRACK: bool>(pa: &PackedA, pb: &PackedB, od: &mut [f32]) {
    assert_eq!(
        pa.variant, pb.variant,
        "gemm_packed_tn: operand packs were laid out for different kernel variants"
    );
    let variant = pa.variant;
    let (mr, nr) = (variant.mr, variant.nr);
    let (m, k, n) = (pa.m, pa.k, pb.n);
    run_row_tiles(od, n, m * n * k, |first_row, rows| {
        let nrows = rows.len() / n;
        let mut acc = [0.0f32; MR_MAX * NR_MAX];
        let (mut dense_subtiles, mut guarded_subtiles) = (0u64, 0u64);
        let mut r0 = 0;
        while r0 < nrows {
            let mrows = (nrows - r0).min(mr);
            let tile = pa.tile((first_row + r0) / mr);
            // Zero-scan dispatch as in [`gemm_packed`]; the padded tail
            // tile contains zeros and so always takes the guarded path,
            // which skips (and thereby discards) the padding rows.
            let dense = tile.iter().all(|&v| v != 0.0);
            if dense {
                dense_subtiles += 1;
            } else {
                guarded_subtiles += 1;
            }
            for jp in 0..n.div_ceil(nr) {
                let panel = pb.panel(jp);
                let col0 = jp * nr;
                let ncols = (n - col0).min(nr);
                if dense {
                    run_tile_kernel::<false>(variant, tile, k, panel, &mut acc);
                } else {
                    run_tile_kernel::<true>(variant, tile, k, panel, &mut acc);
                }
                write_back(&acc, nr, rows, n, r0, mrows, col0, ncols);
            }
            r0 += mrows;
        }
        if TRACK {
            GEMM_SUBTILES_DENSE.add(dense_subtiles);
            GEMM_SUBTILES_GUARDED.add(guarded_subtiles);
        }
    });
}

// ---------------------------------------------------------------------------
// Shape autotuning
// ---------------------------------------------------------------------------

/// Which GEMM entry point a tuning key describes — the three differ in
/// how `A` is consumed (in-place rows, packed tiles) and whether the
/// skip-zero guard is in play, so the best variant can differ too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmOp {
    /// `matmul`: row-major `A`, skip-zero semantics.
    Nn,
    /// `matmul_nt`: row-major `A`, no skipping.
    Nt,
    /// `matmul_tn`: packed-`A` tiles, skip-zero semantics.
    Tn,
}

/// Multiply-accumulate count below which a shape takes the ISA default
/// variant without timing: tuning costs more than such a product will
/// ever repay, and keeping tiny shapes out of the map bounds its size.
const TUNE_MIN_MACS: usize = 1 << 20;

/// Row cap for the synthetic operands the tuner times: tiles along `m`
/// are homogeneous, so measuring a few hundred rows predicts thousands.
const TUNE_M_CAP: usize = 512;

/// A tuned shape: the GEMM form, its dimensions, and the ISA tier the
/// measurement ran under (so a forced-scalar process never reads a pick
/// made with SIMD available).
type TuneKey = (GemmOp, usize, usize, usize, Isa);

fn tune_key_map() -> &'static Mutex<HashMap<TuneKey, KernelVariant>> {
    static MAP: OnceLock<Mutex<HashMap<TuneKey, KernelVariant>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Deterministic zero-free synthetic data for tuning runs (zeros would
/// drag the timing into the guarded path, which dense training operands
/// rarely take).
fn tune_fill(len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * 2_654_435_761 % 1000) + 1) as f32 * 1e-3).collect()
}

fn time_candidate(op: GemmOp, m: usize, k: usize, n: usize, variant: KernelVariant) -> f64 {
    let a = Tensor::from_vec(tune_fill(m * k), &[m, k]).expect("tuner operand");
    let b = Tensor::from_vec(tune_fill(k * n), &[k, n]).expect("tuner operand");
    let mut out = vec![0.0f32; m * n];
    let mut pb = PackedB::new();
    pb.pack_with(&b, variant).expect("tuner pack");
    let mut pa = PackedA::new();
    if op == GemmOp::Tn {
        let at = Tensor::from_vec(tune_fill(k * m), &[k, m]).expect("tuner operand");
        pa.pack_transposed_with(&at, variant).expect("tuner pack");
    }
    // Two timed passes (after one warm-up), keeping the minimum: the
    // choice only affects speed, never bits, so timing noise is benign.
    let mut best = f64::INFINITY;
    for pass in 0..3 {
        let t0 = std::time::Instant::now();
        // Untracked entry points: trials are synthetic work that fires
        // only on the first same-shape call per process, so letting them
        // bump the GEMM telemetry counters would make two same-seed runs
        // (one cold, one cache-warm) disagree.
        match op {
            GemmOp::Nn => gemm_packed_untracked::<true>(a.data(), k, &pb, &mut out),
            GemmOp::Nt => gemm_packed_untracked::<false>(a.data(), k, &pb, &mut out),
            GemmOp::Tn => gemm_packed_tn_impl::<false>(&pa, &pb, &mut out),
        }
        if pass > 0 {
            best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    best
}

/// The autotuned [`KernelVariant`] for a GEMM shape: cached per process,
/// keyed on the operation, `m/k/n` and the active ISA. The first call for
/// a large-enough shape times the ISA's candidate variants on synthetic
/// operands (the winner changes speed, never bits) and caches the choice;
/// later calls are a map lookup. Small shapes skip straight to the ISA
/// default. Layers avoid even the lookup in steady state by memoizing
/// through a [`VariantCache`] stored next to their weight packs.
pub fn tuned_variant(op: GemmOp, m: usize, k: usize, n: usize) -> KernelVariant {
    let isa = active_isa();
    let candidates = KernelVariant::candidates(isa);
    if candidates.len() == 1 || m * k * n < TUNE_MIN_MACS {
        return KernelVariant::default_for(isa);
    }
    let mut map = tune_key_map().lock().expect("gemm tuner mutex");
    *map.entry((op, m, k, n, isa)).or_insert_with(|| {
        let mt = m.min(TUNE_M_CAP);
        let mut best = (f64::INFINITY, KernelVariant::default_for(isa));
        for &v in candidates {
            let t = time_candidate(op, mt, k, n, v);
            if t < best.0 {
                best = (t, v);
            }
        }
        // Record the pick and its measured throughput. The value is a
        // wall-clock measurement, so the gauge is snapshot-only — it
        // must never enter the (byte-identity-bound) JSONL stream. The
        // cold tuning path is the only place a label string is built.
        if aergia_telemetry::enabled() && best.0.is_finite() {
            let op_label = match op {
                GemmOp::Nn => "nn",
                GemmOp::Nt => "nt",
                GemmOp::Tn => "tn",
            };
            let gflops = 2.0 * (mt * k * n) as f64 / best.0 / 1e9;
            let name = format!(
                "aergia_gemm_tuned_gflops{{op=\"{op_label}\",m=\"{m}\",k=\"{k}\",n=\"{n}\",\
                 variant=\"{}_{}x{}\"}}",
                best.1.isa.label(),
                best.1.mr,
                best.1.nr
            );
            aergia_telemetry::gauge_snapshot_only(&name).set(gflops);
        }
        best.1
    })
}

/// A one-shape memo of [`tuned_variant`], stored by layers next to their
/// cached weight packs: steady-state forward/backward passes re-use the
/// recorded choice without touching the global map (no lock, no hash, no
/// allocation), and a batch-size change falls through to the tuner once.
#[derive(Debug, Clone, Copy, Default)]
pub struct VariantCache(Option<(usize, usize, usize, KernelVariant)>);

impl VariantCache {
    /// Creates an empty memo.
    pub fn new() -> Self {
        VariantCache(None)
    }

    /// The variant for `(op, m, k, n)`, from the memo when it matches.
    #[inline]
    pub fn get(&mut self, op: GemmOp, m: usize, k: usize, n: usize) -> KernelVariant {
        match self.0 {
            Some((cm, ck, cn, v)) if (cm, ck, cn) == (m, k, n) => v,
            _ => {
                let v = tuned_variant(op, m, k, n);
                self.0 = Some((m, k, n, v));
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        let data = (0..n)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.15 {
                    0.0
                } else {
                    rng.random_range(-1.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    /// Every variant that could ever dispatch on this machine, plus the
    /// portable baseline.
    fn all_variants() -> Vec<KernelVariant> {
        let mut vs = vec![KernelVariant::PORTABLE];
        for isa in [Isa::Avx2, Isa::Avx512] {
            if isa <= active_isa() {
                vs.extend_from_slice(KernelVariant::candidates(isa));
            }
        }
        vs.dedup();
        vs
    }

    #[test]
    fn packed_b_layout_pads_ragged_columns_with_zeros() {
        // 2×3 matrix, NR=8: one panel, columns 3..8 zero-padded.
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let mut pb = PackedB::new();
        pb.pack(&b).unwrap();
        assert!(pb.is_valid());
        assert_eq!(pb.variant(), KernelVariant::PORTABLE);
        assert_eq!((pb.k(), pb.n()), (2, 3));
        let panel = pb.panel(0);
        assert_eq!(&panel[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&panel[3..NR], &[0.0; 5][..]);
        assert_eq!(&panel[NR..NR + 3], &[4.0, 5.0, 6.0]);
        assert_eq!(&panel[NR + 3..], &[0.0; 5][..]);
    }

    #[test]
    fn pack_transposed_matches_packing_the_explicit_transpose() {
        let b = random(&[7, 13], 3);
        let bt = ops::transpose(&b).unwrap();
        for variant in all_variants() {
            let mut direct = PackedB::new();
            direct.pack_transposed_with(&b, variant).unwrap();
            let mut via_t = PackedB::new();
            via_t.pack_with(&bt, variant).unwrap();
            assert_eq!(direct.buf, via_t.buf, "{variant:?}");
            assert_eq!((direct.k(), direct.n()), (via_t.k(), via_t.n()));
        }
    }

    #[test]
    fn dirty_buffer_reuse_fully_overwrites_padding() {
        let mut pb = PackedB::new();
        pb.pack(&Tensor::full(&[9, 11], 7.0)).unwrap();
        // Shrink into the same buffer: every byte of the smaller layout,
        // padding included, must be rewritten.
        pb.pack(&Tensor::ones(&[2, 3])).unwrap();
        let panel = pb.panel(0);
        assert_eq!(&panel[3..NR], &[0.0; 5][..], "stale 7.0s must not survive in the padding");

        let mut pa = PackedA::new();
        pa.pack_transposed(&Tensor::full(&[6, 10], 3.0)).unwrap();
        pa.pack_transposed(&Tensor::ones(&[2, 5])).unwrap();
        // 5 rows → tile 1 holds row 4 plus MR-1 padded rows.
        let tile = pa.tile(1);
        assert_eq!(&tile[..MR], &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn repacking_with_another_variant_rewrites_layout_and_tag() {
        // A pool hit can hand a buffer laid out for a different variant;
        // the pack call must fully re-describe it (tag included), so the
        // drivers always dispatch the kernel matching the actual layout.
        let b = random(&[9, 11], 5);
        let mut pb = PackedB::new();
        for &variant in all_variants().iter().rev() {
            pb.pack_with(&b, variant).unwrap();
            assert_eq!(pb.variant(), variant);
            assert_eq!(pb.buf.len(), 11usize.div_ceil(variant.nr) * variant.nr * 9);
            let a = random(&[6, 9], 6);
            let mut out = Tensor::default();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            assert_eq!(out.data(), ops::matmul_reference(&a, &b).unwrap().data(), "{variant:?}");
        }
    }

    #[test]
    fn ensure_skips_while_valid_and_repacks_after_invalidate() {
        let b = Tensor::ones(&[4, 4]);
        let mut pb = PackedB::new();
        pb.ensure(&b).unwrap();
        let packed_one = pb.panel(0)[0];
        assert_eq!(packed_one, 1.0);
        // Mutating the source without invalidating: ensure() must keep the
        // cached pack (that is the caching contract the layers rely on).
        let b2 = Tensor::full(&[4, 4], 2.0);
        pb.ensure(&b2).unwrap();
        assert_eq!(pb.panel(0)[0], 1.0, "valid pack must not be repacked");
        pb.invalidate();
        assert!(!pb.is_valid());
        pb.ensure(&b2).unwrap();
        assert_eq!(pb.panel(0)[0], 2.0, "invalidated pack must repack");
    }

    #[test]
    fn ensure_with_repacks_on_variant_change_only() {
        let b = Tensor::ones(&[4, 4]);
        let mut pb = PackedB::new();
        pb.ensure_with(&b, KernelVariant::PORTABLE).unwrap();
        // Same variant: cached.
        pb.ensure_with(&Tensor::full(&[4, 4], 2.0), KernelVariant::PORTABLE).unwrap();
        assert_eq!(pb.panel(0)[0], 1.0);
        // Different variant: same shape must still repack (the layout is
        // variant-dependent).
        let other = KernelVariant::default_for(Isa::Avx512);
        pb.ensure_with(&Tensor::full(&[4, 4], 2.0), other).unwrap();
        assert_eq!(pb.variant(), other);
        assert_eq!(pb.panel(0)[0], 2.0);
    }

    #[test]
    fn ensure_repacks_when_orientation_or_shape_changes() {
        let mut pb = PackedB::new();
        pb.ensure(&Tensor::ones(&[4, 6])).unwrap();
        // Same tensor, other orientation: must repack, not reuse.
        pb.ensure_transposed(&Tensor::full(&[4, 6], 2.0)).unwrap();
        assert_eq!((pb.k(), pb.n()), (6, 4));
        assert_eq!(pb.panel(0)[0], 2.0);
        // Shape change with a stale-but-valid flag: must repack.
        pb.ensure(&Tensor::full(&[3, 5], 4.0)).unwrap();
        assert_eq!((pb.k(), pb.n()), (3, 5));
        assert_eq!(pb.panel(0)[0], 4.0);
    }

    #[test]
    fn packed_kernels_match_references_on_edge_shapes_for_every_variant() {
        // Shapes straddling mr/nr/TILE boundaries, including degenerate 1s
        // and ragged edges below every variant's tile geometry.
        for (case, &(m, k, n)) in [
            (1, 1, 1),
            (MR, 1, NR),
            (MR + 1, 3, NR + 1),
            (MR_MAX - 1, 5, NR_MAX + 1),
            (3, 200, 5),
            (65, 33, 17),
            (64, 128, 64),
            (129, 64, 9),
        ]
        .iter()
        .enumerate()
        {
            let a = random(&[m, k], 100 + case as u64);
            let b = random(&[k, n], 200 + case as u64);
            let bt = random(&[n, k], 300 + case as u64);
            let at = random(&[k, m], 400 + case as u64);
            let nn = ops::matmul_reference(&a, &b).unwrap();
            let nt = ops::matmul_nt_reference(&a, &bt).unwrap();
            let tn = ops::matmul_tn_reference(&at, &b).unwrap();
            for variant in all_variants() {
                let mut pb = PackedB::new();
                pb.pack_with(&b, variant).unwrap();
                let mut out = Tensor::default();
                ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
                assert_eq!(out.data(), nn.data(), "matmul {m}x{k}x{n} {variant:?}");

                let mut pbt = PackedB::new();
                pbt.pack_transposed_with(&bt, variant).unwrap();
                ops::matmul_nt_packed_into(&a, &pbt, &mut out).unwrap();
                assert_eq!(out.data(), nt.data(), "matmul_nt {m}x{k}x{n} {variant:?}");

                let mut pa = PackedA::new();
                pa.pack_transposed_with(&at, variant).unwrap();
                ops::matmul_tn_packed_into(&pa, &pb, &mut out).unwrap();
                assert_eq!(out.data(), tn.data(), "matmul_tn {m}x{k}x{n} {variant:?}");
            }
        }
    }

    #[test]
    fn mixed_variant_tn_pair_panics() {
        let at = random(&[6, 8], 1);
        let b = random(&[6, 9], 2);
        let mut pa = PackedA::new();
        pa.pack_transposed_with(&at, KernelVariant::PORTABLE).unwrap();
        let mut pb = PackedB::new();
        pb.pack_with(&b, KernelVariant::default_for(Isa::Avx512)).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Tensor::default();
            let _ = ops::matmul_tn_packed_into(&pa, &pb, &mut out);
        }));
        assert!(r.is_err(), "mixed-variant packs must be rejected");
    }

    #[test]
    fn tuned_variant_is_cached_and_small_shapes_take_the_default() {
        let small = tuned_variant(GemmOp::Nt, 4, 16, 10);
        assert_eq!(small, KernelVariant::default_for(active_isa()));
        let v1 = tuned_variant(GemmOp::Nt, 256, 128, 64);
        let v2 = tuned_variant(GemmOp::Nt, 256, 128, 64);
        assert_eq!(v1, v2, "second lookup must hit the cache");
        assert!(KernelVariant::candidates(active_isa()).contains(&v1));

        let mut memo = VariantCache::new();
        assert_eq!(memo.get(GemmOp::Nt, 256, 128, 64), v1);
        assert_eq!(memo.get(GemmOp::Nt, 256, 128, 64), v1);
    }

    #[test]
    fn non_finite_values_flow_identically_through_every_variant() {
        // See the module docs: ±inf and -0.0 results and NaN *positions*
        // are pinned bit-exactly across every variant and the reference;
        // a NaN's own sign/payload bits are the one thing the compiler
        // does not guarantee (LLVM may commute a single mul/add per
        // kernel instantiation, which only a freshly created NaN can
        // observe). The skip guard is semantically load-bearing here
        // (0 · inf = NaN when *not* skipped), so NaN placement also pins
        // the skip semantics across variants.
        let assert_same_modulo_nan_bits = |got: &Tensor, want: &Tensor, what: &str| {
            for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
                if w.is_nan() {
                    assert!(g.is_nan(), "{what}: element {i} must be NaN, got {g:?}");
                } else {
                    assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i} ({g:?} vs {w:?})");
                }
            }
        };

        // Case 1: a dense grid of specials — every accumulation chain hits
        // NaNs, pinning NaN placement and the skip semantics (a -0.0 in A
        // is skipped like +0.0; an unskipped 0 · inf is NaN).
        let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0, 1.5, -2.25];
        let (m, k, n) = (9, 13, 11);
        let dense_a =
            Tensor::from_vec((0..m * k).map(|i| specials[i % specials.len()]).collect(), &[m, k])
                .unwrap();
        let dense_b = Tensor::from_vec(
            (0..k * n).map(|i| specials[(i * 3 + 1) % specials.len()]).collect(),
            &[k, n],
        )
        .unwrap();
        // Case 2: isolated ±inf and -0.0 rows in an otherwise positive
        // finite product — infinities survive to the output and every
        // element is non-NaN, so this case is a full bit-for-bit match.
        let mut inf_a = random(&[9, 13], 77);
        for v in inf_a.data_mut() {
            *v = v.abs() + 0.25;
        }
        let mut inf_b = random(&[13, 11], 78);
        for v in inf_b.data_mut() {
            *v = v.abs() + 0.25;
        }
        inf_a.data_mut()[0] = f32::INFINITY;
        inf_a.data_mut()[13] = f32::NEG_INFINITY;
        for kk in 0..13 {
            inf_a.data_mut()[2 * 13 + kk] = -0.0;
        }

        let mut coverage = Vec::new();
        for (case, (a, b)) in [(1, (&dense_a, &dense_b)), (2, (&inf_a, &inf_b))].into_iter() {
            let nn_ref = ops::matmul_reference(a, b).unwrap();
            let bt = ops::transpose(b).unwrap();
            let nt_ref = ops::matmul_nt_reference(a, &bt).unwrap();
            coverage.extend_from_slice(nn_ref.data());
            coverage.extend_from_slice(nt_ref.data());
            for variant in all_variants() {
                let mut pb = PackedB::new();
                pb.pack_with(b, variant).unwrap();
                let mut out = Tensor::default();
                ops::matmul_packed_into(a, &pb, &mut out).unwrap();
                assert_same_modulo_nan_bits(&out, &nn_ref, &format!("case {case} nn {variant:?}"));

                // The unguarded path (matmul_nt: no zero skipping)
                // creates NaNs from 0 · inf that the guarded path never
                // sees.
                let mut pbt = PackedB::new();
                pbt.pack_transposed_with(&bt, variant).unwrap();
                ops::matmul_nt_packed_into(a, &pbt, &mut out).unwrap();
                assert_same_modulo_nan_bits(&out, &nt_ref, &format!("case {case} nt {variant:?}"));
            }
        }
        assert!(coverage.iter().any(|v| v.is_nan()), "cases must exercise NaN outputs");
        assert!(coverage.contains(&f32::INFINITY), "cases must exercise +inf outputs");
        assert!(coverage.contains(&f32::NEG_INFINITY), "cases must exercise -inf");
    }
}
