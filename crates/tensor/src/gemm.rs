//! Packed, register-blocked GEMM: the microkernel architecture behind the
//! [`crate::ops`] matmul family.
//!
//! # Architecture
//!
//! The classic blocked kernels stream an *unpacked* `B` row by row, which
//! keeps every output element in memory across the whole shared dimension
//! and re-derives `B`'s addressing per row. The packed scheme splits a
//! product into the three standard stages of a high-performance GEMM:
//!
//! 1. **Pack `B`** ([`PackedB`]): the `k×n` operand is rearranged into
//!    `ceil(n / NR)` *column panels*. A panel holds `NR` consecutive output
//!    columns laid out `k`-major — element `(kk, c)` of panel `jp` lives at
//!    `panel[kk·NR + c]` — so the microkernel's inner step loads one
//!    contiguous `NR`-vector per `k`. Panels are stored as consecutive
//!    `K_BLOCK × NR` blocks (the `K_BLOCK`-sized slices of a panel are
//!    adjacent in memory), and ragged edge columns are zero-padded to `NR`.
//! 2. **Pack `A` row tiles** ([`PackedA`]): used when the `A` operand is
//!    stored transposed (`matmul_tn`'s `k×m` layout), where direct access
//!    would stride by `m` per `k` step. Rows are regrouped into `MR`-row
//!    tiles laid `k`-major (`tile[kk·MR + r]`), zero-padding the ragged
//!    tail tile. For row-major `A` operands (`matmul`/`matmul_nt`) the
//!    rows are already contiguous along `k`, so the microkernel reads them
//!    in place — packing would only re-copy `m×k` values that hardware
//!    prefetchers already stream perfectly.
//! 3. **Microkernel**: an `MR × NR` register tile of accumulators walks the
//!    shared dimension once. Per `k` step it broadcasts `MR` values of `A`
//!    and multiplies them into one `NR`-wide vector of the `B` panel —
//!    vectorized across output *columns* only, never across `k` — keeping
//!    `MR·NR` partial sums in registers instead of re-loading and
//!    re-storing `C` every step.
//!
//! # Determinism contract
//!
//! Every output element accumulates its `k` contributions **strictly in
//! ascending-`k` order from a `+0.0` start**, exactly like the naive
//! reference kernels: the register tile only changes *where* the running
//! sum lives (a register instead of the output buffer), never the sequence
//! of floating-point operations that produce it. Kernels whose reference
//! skips exact-zero `A` elements ([`crate::ops::matmul_reference`],
//! [`crate::ops::matmul_tn_reference`]) replicate the skip exactly, but
//! hoist its cost out of the hot loop: each `MR`-subtile is scanned for
//! zeros once, zero-free subtiles run an unguarded microkernel (a guard
//! that can never fire changes nothing), and only subtiles containing
//! zeros take the guarded per-`(row, k)` skip — where the skip recoups
//! its branch cost by eliding work, e.g. on ReLU-masked gradients. The
//! packed kernels are therefore **bit-identical** to the
//! references, to the retained blocked kernels, and to themselves at any
//! thread count (parallel row tiles write disjoint rows at fixed
//! boundaries). Zero padding never leaks into results: padded `B` columns
//! are computed but not written back, and padded `A` rows (zero entries,
//! elided by the guarded path their zeros force) are discarded at
//! write-back.
//!
//! # Reuse and caching
//!
//! Both pack types fully overwrite their buffer on every `pack_*` call
//! (including the zero padding), so dirty reused buffers are safe — the
//! property suite packs through deliberately dirty buffers. [`PackedB`]
//! additionally carries a validity flag so a *cached* pack of a weight
//! matrix can be reused across calls and invalidated when the weights
//! change (`ensure_*` repacks only when needed); `aergia-nn` caches one
//! pack per weight operand per layer and invalidates from the optimizer
//! and `set_params`. Transient packs (per-batch activation/gradient
//! operands) cycle through [`crate::Workspace`] pack pools instead.

use crate::ops::{require_rank2, run_row_tiles};
use crate::{Tensor, TensorError};

/// Microkernel register-tile height: output rows accumulated at once.
///
/// `MR × NR` f32 accumulators plus one `NR`-wide `B` vector and `MR`
/// broadcast values fit the 16 SIMD registers of baseline x86-64.
pub const MR: usize = 4;

/// Microkernel register-tile width: output columns per `B` panel, the
/// vectorized dimension (two 128-bit lanes, one 256-bit with AVX).
pub const NR: usize = 8;

/// Granularity (along `k`) of the contiguous panel blocks inside a
/// [`PackedB`]; successive `K_BLOCK × NR` blocks of a panel are adjacent,
/// so a full panel is one `k × NR` slab the microkernel streams linearly.
pub const K_BLOCK: usize = 128;

/// A `B` operand packed into zero-padded `NR`-wide column panels (see the
/// [module docs](self) for the layout).
///
/// The buffer is reusable: every `pack_*` call rewrites it entirely for
/// the new operand, growing the allocation only on a high-water mark.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{gemm::PackedB, ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::ones(&[3, 4]);
/// let b = Tensor::ones(&[4, 5]);
/// let mut pb = PackedB::new();
/// pb.pack(&b)?;
/// let mut out = Tensor::default();
/// ops::matmul_packed_into(&a, &pb, &mut out)?;
/// assert_eq!(out, ops::matmul(&a, &b)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    buf: Vec<f32>,
    k: usize,
    n: usize,
    transposed: bool,
    valid: bool,
}

impl PackedB {
    /// Creates an empty (invalid) pack; the first `pack_*` call sizes it.
    pub fn new() -> Self {
        PackedB::default()
    }

    /// Whether the pack currently holds a packed operand (a fresh or
    /// [`PackedB::invalidate`]d pack is not valid).
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Logical shared dimension `k` of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical column count `n` of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Marks the pack stale (e.g. after the source matrix changed) while
    /// keeping the buffer for the next `pack_*`/`ensure_*` call.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    fn reset_layout(&mut self, k: usize, n: usize, transposed: bool) {
        self.k = k;
        self.n = n;
        self.transposed = transposed;
        // Contents are fully rewritten by the caller (padding included),
        // so the resize fill value is never observed.
        self.buf.resize(n.div_ceil(NR) * NR * k, 0.0);
    }

    /// Packs a row-major `k×n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (k, n) = require_rank2("pack_b", b)?;
        self.reset_layout(k, n, false);
        let bd = b.data();
        for (jp, panel) in self.buf.chunks_exact_mut(k * NR).enumerate() {
            let col0 = jp * NR;
            let ncols = (n - col0).min(NR);
            for (kk, dst) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &bd[kk * n + col0..kk * n + col0 + ncols];
                dst[..ncols].copy_from_slice(src);
                dst[ncols..].fill(0.0);
            }
        }
        self.valid = true;
        Ok(())
    }

    /// Packs the *transpose* of a row-major `n×k` matrix, i.e. the packed
    /// logical operand is `bᵀ` (`k×n`). This is how a `matmul_nt` `B`
    /// operand (a `[rows, k]` weight matrix) becomes column panels.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (n, k) = require_rank2("pack_bt", b)?;
        self.reset_layout(k, n, true);
        let bd = b.data();
        for (jp, panel) in self.buf.chunks_exact_mut(k * NR).enumerate() {
            let col0 = jp * NR;
            let ncols = (n - col0).min(NR);
            for c in 0..NR {
                if c < ncols {
                    let src = &bd[(col0 + c) * k..(col0 + c + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * NR + c] = v;
                    }
                } else {
                    for kk in 0..k {
                        panel[kk * NR + c] = 0.0;
                    }
                }
            }
        }
        self.valid = true;
        Ok(())
    }

    /// [`PackedB::pack`] only if the pack is stale or shaped for a
    /// different operand — the cache-friendly entry point for weight
    /// matrices that rarely change.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (k, n) = require_rank2("pack_b", b)?;
        if self.valid && !self.transposed && self.k == k && self.n == n {
            return Ok(());
        }
        self.pack(b)
    }

    /// [`PackedB::pack_transposed`] only if the pack is stale or shaped
    /// for a different operand.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn ensure_transposed(&mut self, b: &Tensor) -> Result<(), TensorError> {
        let (n, k) = require_rank2("pack_bt", b)?;
        if self.valid && self.transposed && self.k == k && self.n == n {
            return Ok(());
        }
        self.pack_transposed(b)
    }

    fn panel(&self, jp: usize) -> &[f32] {
        &self.buf[jp * self.k * NR..(jp + 1) * self.k * NR]
    }
}

/// An `A` operand packed into zero-padded `MR`-row tiles laid `k`-major
/// (see the [module docs](self)); used by [`crate::ops::matmul_tn_packed_into`],
/// whose `A` is stored transposed and would otherwise be read with an
/// `m`-element stride per `k` step.
///
/// Like [`PackedB`], every pack call fully rewrites the buffer, so dirty
/// reuse through a [`crate::Workspace`] pool is safe.
#[derive(Debug, Clone, Default)]
pub struct PackedA {
    buf: Vec<f32>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Creates an empty pack; the first pack call sizes it.
    pub fn new() -> Self {
        PackedA::default()
    }

    /// Logical row count `m` of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Logical shared dimension `k` of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packs the *transpose* of a row-major `k×m` matrix into `MR`-row
    /// tiles: logical row `i = t·MR + r` of `aᵀ` lands in tile `t` at
    /// `tile[kk·MR + r]`, with the ragged tail tile zero-padded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn pack_transposed(&mut self, a: &Tensor) -> Result<(), TensorError> {
        let (k, m) = require_rank2("pack_at", a)?;
        self.m = m;
        self.k = k;
        // Fully rewritten below (padding included); the fill value is
        // never observed.
        self.buf.resize(m.div_ceil(MR) * MR * k, 0.0);
        let ad = a.data();
        for (t, tile) in self.buf.chunks_exact_mut(MR * k).enumerate() {
            let row0 = t * MR;
            let mrows = (m - row0).min(MR);
            for (kk, dst) in tile.chunks_exact_mut(MR).enumerate() {
                let src = &ad[kk * m + row0..kk * m + row0 + mrows];
                dst[..mrows].copy_from_slice(src);
                dst[mrows..].fill(0.0);
            }
        }
        Ok(())
    }

    fn tile(&self, t: usize) -> &[f32] {
        &self.buf[t * MR * self.k..(t + 1) * MR * self.k]
    }
}

/// One accumulator row of the register tile: `acc += av · b`. A fixed-size
/// `b` and straight-line updates keep the row SROA-promoted to registers.
///
/// With `SKIP`, the whole row update is skipped for an exact-zero `av`,
/// replicating the reference kernels' skip-zero fast path per `(row, k)`.
/// The drivers only instantiate `SKIP = true` for subtiles that actually
/// contain zeros (see [`gemm_packed`]), so dense operands never pay for
/// the guard.
#[inline(always)]
fn fma_row<const SKIP: bool>(acc: &mut [f32; NR], av: f32, b: &[f32; NR]) {
    if SKIP && av == 0.0 {
        return;
    }
    for (o, &bv) in acc.iter_mut().zip(b) {
        *o += av * bv;
    }
}

/// Whether an `MR`-subtile is zero-free, i.e. the skip-zero guard can
/// never fire and the unguarded microkernel instantiation is bit-exact.
/// One scan per subtile buys guard-free inner loops across every `B`
/// panel — the scan reads the same `MR·k` values a single panel pass
/// reads, amortised over `n/NR` panels.
#[inline(always)]
fn rows_zero_free(rows: &[&[f32]; MR]) -> bool {
    rows.iter().all(|row| row.iter().all(|&v| v != 0.0))
}

/// The `MR × NR` register-tile microkernel over row-major `A` rows.
///
/// `rows` are the `MR` source rows (a shorter tail tile passes its last
/// row repeatedly; the duplicate accumulators are dropped at write-back),
/// each exactly `k` long. The four rows advance through `k` together:
/// their accumulator chains are independent, so one row's FP-add latency
/// hides behind the others', while each individual output element still
/// accumulates strictly ascending-`k` — interleaving rows never touches a
/// single element's chain. The accumulators are copied into plain local
/// arrays so scalar replacement keeps them in registers for the whole `k`
/// walk.
#[inline(always)]
fn microkernel_rows<const SKIP: bool>(
    rows: [&[f32]; MR],
    panel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    let [a0, a1, a2, a3] = rows;
    let mut x0 = acc[0];
    let mut x1 = acc[1];
    let mut x2 = acc[2];
    let mut x3 = acc[3];
    let iter = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
    for ((((&v0, &v1), &v2), &v3), b) in iter {
        let b: &[f32; NR] = b.try_into().expect("chunks_exact yields NR-sized chunks");
        fma_row::<SKIP>(&mut x0, v0, b);
        fma_row::<SKIP>(&mut x1, v1, b);
        fma_row::<SKIP>(&mut x2, v2, b);
        fma_row::<SKIP>(&mut x3, v3, b);
    }
    acc[0] = x0;
    acc[1] = x1;
    acc[2] = x2;
    acc[3] = x3;
}

/// [`microkernel_rows`] over a [`PackedA`] tile (`k`-major, `MR`-wide):
/// the per-`k` `A` values come from one contiguous `MR`-vector of the tile
/// instead of four row pointers.
#[inline(always)]
fn microkernel_packed<const SKIP: bool>(tile: &[f32], panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let mut x0 = acc[0];
    let mut x1 = acc[1];
    let mut x2 = acc[2];
    let mut x3 = acc[3];
    for (avals, b) in tile.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
        let b: &[f32; NR] = b.try_into().expect("chunks_exact yields NR-sized chunks");
        fma_row::<SKIP>(&mut x0, avals[0], b);
        fma_row::<SKIP>(&mut x1, avals[1], b);
        fma_row::<SKIP>(&mut x2, avals[2], b);
        fma_row::<SKIP>(&mut x3, avals[3], b);
    }
    acc[0] = x0;
    acc[1] = x1;
    acc[2] = x2;
    acc[3] = x3;
}

/// Writes the live part of a register tile into the output rows.
#[inline(always)]
fn write_back(
    acc: &[[f32; NR]; MR],
    rows: &mut [f32],
    n: usize,
    r0: usize,
    mrows: usize,
    col0: usize,
    ncols: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mrows) {
        let orow = &mut rows[(r0 + r) * n + col0..(r0 + r) * n + col0 + ncols];
        orow.copy_from_slice(&accr[..ncols]);
    }
}

/// Shared driver for the row-major-`A` packed kernels (`matmul` /
/// `matmul_nt`): parallel [`run_row_tiles`] over the output, then per tile
/// an `MR`-subtile-outer, `B`-panel-inner walk. Subtile-outer order lets a
/// `SKIP` kernel scan each subtile's rows for zeros *once*: zero-free
/// subtiles (the common case on dense operands) run the unguarded
/// microkernel — bit-exact because a guard that never fires contributes
/// nothing — and only subtiles that actually contain zeros pay for the
/// guarded instantiation (where the skip then saves real work, e.g. on
/// ReLU-masked gradients).
pub(crate) fn gemm_packed<const SKIP: bool>(ad: &[f32], k: usize, pb: &PackedB, od: &mut [f32]) {
    let n = pb.n;
    let m = od.len() / n.max(1);
    run_row_tiles(od, n, m * n * k, |first_row, rows| {
        let nrows = rows.len() / n;
        let mut r0 = 0;
        while r0 < nrows {
            let mrows = (nrows - r0).min(MR);
            let row = |r: usize| {
                let i = first_row + r0 + r.min(mrows - 1);
                &ad[i * k..(i + 1) * k]
            };
            let tile_rows = [row(0), row(1), row(2), row(3)];
            let dense = !SKIP || rows_zero_free(&tile_rows);
            for jp in 0..pb.n.div_ceil(NR) {
                let panel = pb.panel(jp);
                let col0 = jp * NR;
                let ncols = (n - col0).min(NR);
                let mut acc = [[0.0f32; NR]; MR];
                if dense {
                    microkernel_rows::<false>(tile_rows, panel, &mut acc);
                } else {
                    microkernel_rows::<true>(tile_rows, panel, &mut acc);
                }
                write_back(&acc, rows, n, r0, mrows, col0, ncols);
            }
            r0 += mrows;
        }
    });
}

/// Driver for the packed-`A` kernel (`matmul_tn`). Row-tile boundaries are
/// multiples of [`MR`] (the parallel tile size is), so output sub-tiles map
/// 1:1 onto [`PackedA`] tiles.
pub(crate) fn gemm_packed_tn(pa: &PackedA, pb: &PackedB, od: &mut [f32]) {
    let (m, k, n) = (pa.m, pa.k, pb.n);
    run_row_tiles(od, n, m * n * k, |first_row, rows| {
        let nrows = rows.len() / n;
        let mut r0 = 0;
        while r0 < nrows {
            let mrows = (nrows - r0).min(MR);
            let tile = pa.tile((first_row + r0) / MR);
            // Zero-scan dispatch as in [`gemm_packed`]; the padded tail
            // tile contains zeros and so always takes the guarded path,
            // which skips (and thereby discards) the padding rows.
            let dense = tile.iter().all(|&v| v != 0.0);
            for jp in 0..pb.n.div_ceil(NR) {
                let panel = pb.panel(jp);
                let col0 = jp * NR;
                let ncols = (n - col0).min(NR);
                let mut acc = [[0.0f32; NR]; MR];
                if dense {
                    microkernel_packed::<false>(tile, panel, &mut acc);
                } else {
                    microkernel_packed::<true>(tile, panel, &mut acc);
                }
                write_back(&acc, rows, n, r0, mrows, col0, ncols);
            }
            r0 += mrows;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        let data = (0..n)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.15 {
                    0.0
                } else {
                    rng.random_range(-1.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn packed_b_layout_pads_ragged_columns_with_zeros() {
        // 2×3 matrix, NR=8: one panel, columns 3..8 zero-padded.
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let mut pb = PackedB::new();
        pb.pack(&b).unwrap();
        assert!(pb.is_valid());
        assert_eq!((pb.k(), pb.n()), (2, 3));
        let panel = pb.panel(0);
        assert_eq!(&panel[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&panel[3..NR], &[0.0; 5][..]);
        assert_eq!(&panel[NR..NR + 3], &[4.0, 5.0, 6.0]);
        assert_eq!(&panel[NR + 3..], &[0.0; 5][..]);
    }

    #[test]
    fn pack_transposed_matches_packing_the_explicit_transpose() {
        let b = random(&[7, 13], 3);
        let bt = ops::transpose(&b).unwrap();
        let mut direct = PackedB::new();
        direct.pack_transposed(&b).unwrap();
        let mut via_t = PackedB::new();
        via_t.pack(&bt).unwrap();
        assert_eq!(direct.buf, via_t.buf);
        assert_eq!((direct.k(), direct.n()), (via_t.k(), via_t.n()));
    }

    #[test]
    fn dirty_buffer_reuse_fully_overwrites_padding() {
        let mut pb = PackedB::new();
        pb.pack(&Tensor::full(&[9, 11], 7.0)).unwrap();
        // Shrink into the same buffer: every byte of the smaller layout,
        // padding included, must be rewritten.
        pb.pack(&Tensor::ones(&[2, 3])).unwrap();
        let panel = pb.panel(0);
        assert_eq!(&panel[3..NR], &[0.0; 5][..], "stale 7.0s must not survive in the padding");

        let mut pa = PackedA::new();
        pa.pack_transposed(&Tensor::full(&[6, 10], 3.0)).unwrap();
        pa.pack_transposed(&Tensor::ones(&[2, 5])).unwrap();
        // 5 rows → tile 1 holds row 4 plus MR-1 padded rows.
        let tile = pa.tile(1);
        assert_eq!(&tile[..MR], &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ensure_skips_while_valid_and_repacks_after_invalidate() {
        let b = Tensor::ones(&[4, 4]);
        let mut pb = PackedB::new();
        pb.ensure(&b).unwrap();
        let packed_one = pb.panel(0)[0];
        assert_eq!(packed_one, 1.0);
        // Mutating the source without invalidating: ensure() must keep the
        // cached pack (that is the caching contract the layers rely on).
        let b2 = Tensor::full(&[4, 4], 2.0);
        pb.ensure(&b2).unwrap();
        assert_eq!(pb.panel(0)[0], 1.0, "valid pack must not be repacked");
        pb.invalidate();
        assert!(!pb.is_valid());
        pb.ensure(&b2).unwrap();
        assert_eq!(pb.panel(0)[0], 2.0, "invalidated pack must repack");
    }

    #[test]
    fn ensure_repacks_when_orientation_or_shape_changes() {
        let mut pb = PackedB::new();
        pb.ensure(&Tensor::ones(&[4, 6])).unwrap();
        // Same tensor, other orientation: must repack, not reuse.
        pb.ensure_transposed(&Tensor::full(&[4, 6], 2.0)).unwrap();
        assert_eq!((pb.k(), pb.n()), (6, 4));
        assert_eq!(pb.panel(0)[0], 2.0);
        // Shape change with a stale-but-valid flag: must repack.
        pb.ensure(&Tensor::full(&[3, 5], 4.0)).unwrap();
        assert_eq!((pb.k(), pb.n()), (3, 5));
        assert_eq!(pb.panel(0)[0], 4.0);
    }

    #[test]
    fn packed_kernels_match_references_on_edge_shapes() {
        // Shapes straddling MR/NR/TILE boundaries, including degenerate 1s.
        for (case, &(m, k, n)) in [
            (1, 1, 1),
            (MR, 1, NR),
            (MR + 1, 3, NR + 1),
            (3, 200, 5),
            (65, 33, 17),
            (64, 128, 64),
            (129, 64, 9),
        ]
        .iter()
        .enumerate()
        {
            let a = random(&[m, k], 100 + case as u64);
            let b = random(&[k, n], 200 + case as u64);
            let mut pb = PackedB::new();
            pb.pack(&b).unwrap();
            let mut out = Tensor::default();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            assert_eq!(
                out.data(),
                ops::matmul_reference(&a, &b).unwrap().data(),
                "matmul {m}x{k}x{n}"
            );

            let bt = random(&[n, k], 300 + case as u64);
            let mut pbt = PackedB::new();
            pbt.pack_transposed(&bt).unwrap();
            ops::matmul_nt_packed_into(&a, &pbt, &mut out).unwrap();
            assert_eq!(
                out.data(),
                ops::matmul_nt_reference(&a, &bt).unwrap().data(),
                "matmul_nt {m}x{k}x{n}"
            );

            let at = random(&[k, m], 400 + case as u64);
            let mut pa = PackedA::new();
            pa.pack_transposed(&at).unwrap();
            ops::matmul_tn_packed_into(&pa, &pb, &mut out).unwrap();
            assert_eq!(
                out.data(),
                ops::matmul_tn_reference(&at, &b).unwrap().data(),
                "matmul_tn {m}x{k}x{n}"
            );
        }
    }
}
