//! Dense `f32` tensor kernels for the Aergia federated-learning reproduction.
//!
//! This crate is the lowest substrate of the workspace: a small, dependency-
//! free (apart from [`rand`]/[`serde`]) tensor library providing exactly the
//! operations a convolutional-network training stack needs:
//!
//! * an owned, row-major [`Tensor`] with shape validation,
//! * elementwise arithmetic and in-place BLAS-style helpers ([`Tensor::axpy`],
//!   [`Tensor::scale`]),
//! * 2-D matrix multiplication ([`ops::matmul`]) and transposition,
//! * `im2col`/`col2im` lowering for convolutions ([`conv`]),
//! * seeded random initialisation ([`init`]), including Box–Muller Gaussian
//!   sampling so the workspace does not need `rand_distr`.
//!
//! The paper's reference implementation runs on PyTorch; this crate (together
//! with `aergia-nn`) is the from-scratch substitution documented in
//! `DESIGN.md` §3.
//!
//! # Examples
//!
//! ```
//! use aergia_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), aergia_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide and re-allowed in exactly one place: the
// explicit-SIMD microkernels in [`gemm`], whose `std::arch` intrinsic
// calls are guarded by runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod gemm;
pub mod init;
pub mod ops;
mod shape;
mod tensor;
mod workspace;

pub use shape::{Shape, TensorError};
pub use tensor::Tensor;
pub use workspace::Workspace;
