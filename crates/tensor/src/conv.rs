//! Convolution lowering: `im2col`, `col2im` and NCHW layout shuffles.
//!
//! Convolutions are computed as matrix products over patch matrices, the
//! same lowering PyTorch's CPU path uses. For a batch of `N` images of
//! shape `C×H×W`, a `kh×kw` kernel with stride `s` and zero padding `p`
//! produces an output of `OH×OW` with
//! `OH = (H + 2p − kh)/s + 1` (likewise `OW`), and the patch matrix has one
//! row per output pixel `(n, oh, ow)` and one column per kernel input
//! `(c, i, j)`.

use crate::{Tensor, TensorError};

/// Geometry of a 2-D convolution or pooling window.
///
/// # Examples
///
/// ```
/// use aergia_tensor::conv::ConvGeometry;
/// let g = ConvGeometry::new(28, 28, 5, 5, 1, 2);
/// assert_eq!((g.out_h, g.out_w), (28, 28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Computes output dimensions for the given window parameters.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input at least once or
    /// if `stride == 0`.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "ConvGeometry: stride must be positive");
        assert!(
            in_h + 2 * pad >= k_h && in_w + 2 * pad >= k_w,
            "ConvGeometry: kernel {k_h}x{k_w} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad,
        );
        let out_h = (in_h + 2 * pad - k_h) / stride + 1;
        let out_w = (in_w + 2 * pad - k_w) / stride + 1;
        ConvGeometry { in_h, in_w, k_h, k_w, stride, pad, out_h, out_w }
    }
}

/// Lowers a batched NCHW tensor into its patch matrix.
///
/// Returns a `[N·OH·OW, C·kh·kw]` matrix whose row `(n, oh, ow)` holds the
/// receptive field feeding output pixel `(oh, ow)` of image `n` (zeros where
/// the window overlaps the padding).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `input` is rank 4 and
/// [`TensorError::ShapeMismatch`] if its spatial dims disagree with `geom`.
pub fn im2col(input: &Tensor, channels: usize, geom: &ConvGeometry) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    im2col_into(input, channels, geom, &mut out)?;
    Ok(out)
}

/// [`im2col`] writing into a caller-provided tensor: `out` is
/// [`Tensor::reset`] to `[N·OH·OW, C·kh·kw]` (reusing its allocation when
/// the capacity suffices) — the im2col scratch a convolution layer reuses
/// across batches.
///
/// # Errors
///
/// Same error conditions as [`im2col`]; `out` is untouched on error.
pub fn im2col_into(
    input: &Tensor,
    channels: usize,
    geom: &ConvGeometry,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let dims = input.dims();
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch { op: "im2col", expected: 4, got: dims.len() });
    }
    if dims[1] != channels || dims[2] != geom.in_h || dims[3] != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: dims.to_vec(),
            rhs: vec![dims[0], channels, geom.in_h, geom.in_w],
        });
    }
    let n = dims[0];
    let (oh, ow) = (geom.out_h, geom.out_w);
    let ckk = channels * geom.k_h * geom.k_w;
    out.reset(&[n * oh * ow, ckk]);
    let src = input.data();
    let dst = out.data_mut();
    let img_stride = channels * geom.in_h * geom.in_w;
    let chan_stride = geom.in_h * geom.in_w;

    for img in 0..n {
        let src_img = &src[img * img_stride..(img + 1) * img_stride];
        for oy in 0..oh {
            let base_y = (oy * geom.stride) as isize - geom.pad as isize;
            let y_interior = base_y >= 0 && base_y + geom.k_h as isize <= geom.in_h as isize;
            for ox in 0..ow {
                let row = ((img * oh + oy) * ow + ox) * ckk;
                let base_x = (ox * geom.stride) as isize - geom.pad as isize;
                // Interior windows (the bulk at small padding) never overlap
                // the padding, so each kernel row is one contiguous copy with
                // no per-element bounds checks.
                if y_interior && base_x >= 0 && base_x + geom.k_w as isize <= geom.in_w as isize {
                    let start = (base_y as usize) * geom.in_w + base_x as usize;
                    let mut col = row;
                    if geom.k_w == 3 {
                        // 3-wide kernels dominate the model zoo; scalar
                        // stores beat a length-3 memcpy.
                        for c in 0..channels {
                            let mut s = c * chan_stride + start;
                            for _ in 0..geom.k_h {
                                let d = &mut dst[col..col + 3];
                                let v = &src_img[s..s + 3];
                                d[0] = v[0];
                                d[1] = v[1];
                                d[2] = v[2];
                                col += 3;
                                s += geom.in_w;
                            }
                        }
                    } else {
                        for c in 0..channels {
                            let mut s = c * chan_stride + start;
                            for _ in 0..geom.k_h {
                                dst[col..col + geom.k_w].copy_from_slice(&src_img[s..s + geom.k_w]);
                                col += geom.k_w;
                                s += geom.in_w;
                            }
                        }
                    }
                    continue;
                }
                let mut col = 0usize;
                for c in 0..channels {
                    let src_chan = &src_img[c * chan_stride..(c + 1) * chan_stride];
                    for ky in 0..geom.k_h {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= geom.in_h as isize {
                            col += geom.k_w;
                            continue;
                        }
                        let src_row =
                            &src_chan[y as usize * geom.in_w..(y as usize + 1) * geom.in_w];
                        for kx in 0..geom.k_w {
                            let x = base_x + kx as isize;
                            if x >= 0 && x < geom.in_w as isize {
                                dst[row + col] = src_row[x as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scatters a patch-matrix gradient back onto the padded input (the adjoint
/// of [`im2col`]): overlapping windows accumulate.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` is not the
/// `[N·OH·OW, C·kh·kw]` matrix matching `batch`, `channels` and `geom`.
pub fn col2im(
    cols: &Tensor,
    batch: usize,
    channels: usize,
    geom: &ConvGeometry,
) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    col2im_into(cols, batch, channels, geom, &mut out)?;
    Ok(out)
}

/// [`col2im`] writing into a caller-provided tensor (see [`im2col_into`]
/// for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`col2im`]; `out` is untouched on error.
pub fn col2im_into(
    cols: &Tensor,
    batch: usize,
    channels: usize,
    geom: &ConvGeometry,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let ckk = channels * geom.k_h * geom.k_w;
    let rows = batch * geom.out_h * geom.out_w;
    if cols.dims() != [rows, ckk] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: vec![rows, ckk],
        });
    }
    out.reset(&[batch, channels, geom.in_h, geom.in_w]);
    let src = cols.data();
    let dst = out.data_mut();
    let img_stride = channels * geom.in_h * geom.in_w;
    let chan_stride = geom.in_h * geom.in_w;

    for img in 0..batch {
        let dst_img = &mut dst[img * img_stride..(img + 1) * img_stride];
        for oy in 0..geom.out_h {
            let base_y = (oy * geom.stride) as isize - geom.pad as isize;
            let y_interior = base_y >= 0 && base_y + geom.k_h as isize <= geom.in_h as isize;
            for ox in 0..geom.out_w {
                let row = ((img * geom.out_h + oy) * geom.out_w + ox) * ckk;
                let base_x = (ox * geom.stride) as isize - geom.pad as isize;
                // Interior fast path: mirrors the one in `im2col_into` and
                // visits (dst, src) pairs in exactly the same order as the
                // general loop below, so accumulation stays bit-identical.
                if y_interior && base_x >= 0 && base_x + geom.k_w as isize <= geom.in_w as isize {
                    let start = (base_y as usize) * geom.in_w + base_x as usize;
                    let mut col = row;
                    if geom.k_w == 3 {
                        for c in 0..channels {
                            let mut d = c * chan_stride + start;
                            for _ in 0..geom.k_h {
                                let win = &mut dst_img[d..d + 3];
                                let add = &src[col..col + 3];
                                win[0] += add[0];
                                win[1] += add[1];
                                win[2] += add[2];
                                col += 3;
                                d += geom.in_w;
                            }
                        }
                    } else {
                        for c in 0..channels {
                            let mut d = c * chan_stride + start;
                            for _ in 0..geom.k_h {
                                let (win, add) =
                                    (&mut dst_img[d..d + geom.k_w], &src[col..col + geom.k_w]);
                                for (wv, &av) in win.iter_mut().zip(add) {
                                    *wv += av;
                                }
                                col += geom.k_w;
                                d += geom.in_w;
                            }
                        }
                    }
                    continue;
                }
                let mut col = 0usize;
                for c in 0..channels {
                    for ky in 0..geom.k_h {
                        let y = base_y + ky as isize;
                        if y < 0 || y >= geom.in_h as isize {
                            col += geom.k_w;
                            continue;
                        }
                        let dst_off = c * chan_stride + y as usize * geom.in_w;
                        for kx in 0..geom.k_w {
                            let x = base_x + kx as isize;
                            if x >= 0 && x < geom.in_w as isize {
                                dst_img[dst_off + x as usize] += src[row + col];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reorders `[N, C, H, W]` activations into the `[N·H·W, C]` row matrix used
/// around the convolution matmul.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 inputs.
pub fn nchw_to_rows(input: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    nchw_to_rows_into(input, &mut out)?;
    Ok(out)
}

/// [`nchw_to_rows`] writing into a caller-provided tensor (see
/// [`im2col_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`nchw_to_rows`]; `out` is untouched on error.
pub fn nchw_to_rows_into(input: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let dims = input.dims();
    if dims.len() != 4 {
        return Err(TensorError::RankMismatch { op: "nchw_to_rows", expected: 4, got: dims.len() });
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    out.reset_for_overwrite(&[n * h * w, c]);
    let src = input.data();
    let dst = out.data_mut();
    let hw = h * w;
    // A `c × hw` transpose per image; tiles keep both the strided and the
    // sequential side cache-resident (a plain double loop re-touches one
    // side's cache lines `TILE`× each).
    const TILE: usize = 32;
    for img in 0..n {
        let src_img = &src[img * c * hw..(img + 1) * c * hw];
        let dst_img = &mut dst[img * hw * c..(img + 1) * hw * c];
        for ch0 in (0..c).step_by(TILE) {
            let ch1 = (ch0 + TILE).min(c);
            for pix0 in (0..hw).step_by(TILE) {
                let pix1 = (pix0 + TILE).min(hw);
                for ch in ch0..ch1 {
                    let src_chan = &src_img[ch * hw..(ch + 1) * hw];
                    for pix in pix0..pix1 {
                        dst_img[pix * c + ch] = src_chan[pix];
                    }
                }
            }
        }
    }
    Ok(())
}

/// Inverse of [`nchw_to_rows`]: reorders a `[N·H·W, C]` row matrix into
/// `[N, C, H, W]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `rows` does not have
/// `n·h·w` rows of `c` columns.
pub fn rows_to_nchw(
    rows: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    rows_to_nchw_into(rows, n, c, h, w, &mut out)?;
    Ok(out)
}

/// [`rows_to_nchw`] writing into a caller-provided tensor (see
/// [`im2col_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`rows_to_nchw`]; `out` is untouched on error.
pub fn rows_to_nchw_into(
    rows: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    if rows.dims() != [n * h * w, c] {
        return Err(TensorError::ShapeMismatch {
            op: "rows_to_nchw",
            lhs: rows.dims().to_vec(),
            rhs: vec![n * h * w, c],
        });
    }
    out.reset_for_overwrite(&[n, c, h, w]);
    let src = rows.data();
    let dst = out.data_mut();
    let hw = h * w;
    // Tiled like `nchw_to_rows_into`, transposing the other way.
    const TILE: usize = 32;
    for img in 0..n {
        let src_img = &src[img * hw * c..(img + 1) * hw * c];
        let dst_img = &mut dst[img * c * hw..(img + 1) * c * hw];
        for ch0 in (0..c).step_by(TILE) {
            let ch1 = (ch0 + TILE).min(c);
            for pix0 in (0..hw).step_by(TILE) {
                let pix1 = (pix0 + TILE).min(hw);
                for ch in ch0..ch1 {
                    let dst_chan = &mut dst_img[ch * hw..(ch + 1) * hw];
                    for pix in pix0..pix1 {
                        dst_chan[pix] = src_img[pix * c + ch];
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_formula() {
        let g = ConvGeometry::new(32, 32, 3, 3, 1, 1);
        assert_eq!((g.out_h, g.out_w), (32, 32));
        let g = ConvGeometry::new(28, 28, 5, 5, 1, 0);
        assert_eq!((g.out_h, g.out_w), (24, 24));
        let g = ConvGeometry::new(8, 8, 2, 2, 2, 0);
        assert_eq!((g.out_h, g.out_w), (4, 4));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn geometry_rejects_oversized_kernel() {
        let _ = ConvGeometry::new(2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel_on_single_pixel_windows() {
        // 1x1 kernel: patch matrix is just the pixel values, row per pixel.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let g = ConvGeometry::new(2, 2, 1, 1, 1, 0);
        let cols = im2col(&x, 2, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        // Row (oh,ow)=(0,0) holds channel values at pixel (0,0): 0 and 4.
        assert_eq!(&cols.data()[0..2], &[0.0, 4.0]);
        assert_eq!(&cols.data()[6..8], &[3.0, 7.0]);
    }

    #[test]
    fn im2col_respects_zero_padding() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = ConvGeometry::new(2, 2, 3, 3, 1, 1);
        let cols = im2col(&x, 1, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output pixel: kernel overlaps top and left padding.
        let row = &cols.data()[0..9];
        assert_eq!(row, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_on_ones() {
        // For all-ones cols, col2im counts how many windows cover each pixel.
        let g = ConvGeometry::new(3, 3, 2, 2, 1, 0);
        let cols = Tensor::ones(&[4, 4]);
        let im = col2im(&cols, 1, 1, &g).unwrap();
        // Corner pixels covered once, edges twice, center four times.
        assert_eq!(im.data(), &[1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn nchw_rows_round_trip() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let rows = nchw_to_rows(&x).unwrap();
        assert_eq!(rows.dims(), &[8, 3]);
        let back = rows_to_nchw(&rows, 2, 3, 2, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn shape_validation_errors() {
        let x = Tensor::zeros(&[2, 2]);
        assert!(im2col(&x, 1, &ConvGeometry::new(2, 2, 1, 1, 1, 0)).is_err());
        assert!(nchw_to_rows(&x).is_err());
        let cols = Tensor::zeros(&[3, 3]);
        assert!(col2im(&cols, 1, 1, &ConvGeometry::new(3, 3, 2, 2, 1, 0)).is_err());
        assert!(rows_to_nchw(&cols, 1, 2, 2, 2).is_err());
    }
}
