//! Matrix operations: multiplication, transposition, bias broadcast.
//!
//! These free functions implement the handful of dense linear-algebra
//! primitives the network stack needs. The three matmul variants are
//! blocked/tiled kernels: the output is cut into row tiles of
//! `TILE_ROWS` rows which execute in parallel on the
//! [`aergia_runtime`] work-stealing pool once a product is worth
//! threading (`PAR_FLOPS`), and `matmul` additionally walks the shared
//! dimension in `K_BLOCK`-wide panels so the B-panel stays hot in cache
//! while a whole row tile accumulates against it.
//!
//! Every allocating entry point has a buffer-reuse twin ([`matmul_into`],
//! [`matmul_nt_into`], [`matmul_tn_into`], [`sum_rows_into`]) that
//! [`Tensor::reset`]s a caller-provided output instead of allocating; the
//! allocating functions are thin wrappers over them, so both spellings run
//! the identical kernel.
//!
//! # Determinism
//!
//! Tiling never reorders floating-point accumulation: for every output
//! element the contributions along the shared dimension are added in
//! ascending-`k` order, exactly as the reference kernels
//! ([`matmul_reference`], [`matmul_nt_reference`], [`matmul_tn_reference`])
//! do, and parallel tiles write disjoint output rows. The blocked kernels
//! are therefore **bit-identical** to the references and to themselves at
//! any thread count — the property the engine's serial-vs-parallel
//! equivalence suite relies on (enforced by unit tests here and the
//! property suite in `tests/proptests.rs`).

use crate::{Tensor, TensorError};

/// Output rows per parallel task: big enough to amortise a pool spawn,
/// small enough that the paper's im2col matrices (thousands of patch rows)
/// split into many tiles.
const TILE_ROWS: usize = 64;

/// Panel width along the shared dimension for `matmul`: `K_BLOCK` rows of
/// `B` are streamed over a full row tile before moving on, keeping the
/// panel in L1/L2 across the tile.
const K_BLOCK: usize = 128;

/// Multiply-accumulate count below which a product runs on the calling
/// thread: at ~1 ns/flop the threshold (~260k) is a few hundred
/// microseconds, comfortably above the pool's per-tile overhead.
const PAR_FLOPS: usize = 1 << 18;

/// Runs `kernel` over the output rows of an `m×n` matrix, tiling and
/// parallelising when `flops` clears [`PAR_FLOPS`] and the global pool has
/// workers. `kernel(first_row, rows)` must write only the rows it is
/// handed; tile boundaries are fixed by [`TILE_ROWS`], so results never
/// depend on the pool size.
fn run_row_tiles(
    out: &mut [f32],
    n: usize,
    flops: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if flops >= PAR_FLOPS && aergia_runtime::parallelism() > 1 {
        aergia_runtime::par_chunks_mut(out, TILE_ROWS * n, |tile, rows| {
            kernel(tile * TILE_ROWS, rows);
        });
    } else {
        kernel(0, out);
    }
}

fn require_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize), TensorError> {
    let dims = t.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, got: dims.len() });
    }
    Ok((dims[0], dims[1]))
}

/// Dense matrix product `A (m×k) · B (k×n) → C (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul`] writing into a caller-provided tensor: `out` is
/// [`Tensor::reset`] to `[m, n]` (reusing its allocation when the capacity
/// suffices) and then overwritten with the product, bit-identically to the
/// allocating kernel.
///
/// # Errors
///
/// Same error conditions as [`matmul`]; `out` is untouched on error.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let mut out = Tensor::default();
/// ops::matmul_into(&a, &b, &mut out)?;
/// assert_eq!(out.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    let (kb, n) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        // Panels of B (`K_BLOCK × n`) stream over the whole row tile; for a
        // fixed output element the `k` order is still strictly ascending,
        // so the accumulation matches `matmul_reference` bit for bit.
        for k0 in (0..ka).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(ka);
            for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
                let arow = &ad[(first_row + r) * ka..(first_row + r + 1) * ka];
                for (k, &aik) in arow[k0..k1].iter().enumerate().map(|(k, v)| (k0 + k, v)) {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[k * n..(k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    });
    Ok(())
}

/// The naive `i-k-j` matmul kept as the oracle for the blocked kernel
/// (property tests assert exact equality on random shapes).
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    let (kb, n) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// `Aᵀ (k×m) · B (k×n) → C (m×n)` without materialising the transpose.
///
/// Used for weight gradients (`xᵀ · dy`).
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *rows* of both operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_tn_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_tn`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`matmul_tn`]; `out` is untouched on error.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (ka, m) = require_rank2("matmul_tn", a)?;
    let (kb, n) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        for k in 0..ka {
            let arow = &ad[k * m..(k + 1) * m];
            let brow = &bd[k * n..(k + 1) * n];
            for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
                let aki = arow[first_row + r];
                if aki == 0.0 {
                    continue;
                }
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o += aki * bkj;
                }
            }
        }
    });
    Ok(())
}

/// The naive `k-i-j` transposed-A matmul kept as the oracle for the tiled
/// kernel.
///
/// # Errors
///
/// Same error conditions as [`matmul_tn`].
pub fn matmul_tn_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = require_rank2("matmul_tn", a)?;
    let (kb, n) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// `A (m×k) · Bᵀ (n×k) → C (m×n)` without materialising the transpose.
///
/// Used for input gradients (`dy · Wᵀ`).
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *columns* of both operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_nt_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_nt`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`matmul_nt`]; `out` is untouched on error.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    let (n, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        // Each output element is one dot product accumulated in a single
        // register over ascending `k` — blocking `k` here would split the
        // accumulator and break bit-identity with the reference.
        for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
            let arow = &ad[(first_row + r) * ka..(first_row + r + 1) * ka];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * ka..(j + 1) * ka];
                let mut acc = 0.0;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    });
    Ok(())
}

/// The naive row-dot-row transposed-B matmul kept as the oracle for the
/// tiled kernel.
///
/// # Errors
///
/// Same error conditions as [`matmul_nt`].
pub fn matmul_nt_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    let (n, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o += acc;
        }
    }
    Ok(out)
}

/// Transpose of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n) = require_rank2("transpose", a)?;
    let mut out = Tensor::zeros(&[n, m]);
    let ad = a.data();
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

/// Adds a length-`n` bias row to every row of an `m×n` matrix, in place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not `[n]`.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) -> Result<(), TensorError> {
    let (_, n) = require_rank2("add_bias_rows", a)?;
    if bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: a.dims().to_vec(),
            rhs: bias.dims().to_vec(),
        });
    }
    let bd = bias.data();
    for row in a.data_mut().chunks_exact_mut(n) {
        for (x, b) in row.iter_mut().zip(bd) {
            *x += b;
        }
    }
    Ok(())
}

/// Sums an `m×n` matrix over its rows, producing a length-`n` vector.
///
/// This is the bias gradient for a batched linear layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn sum_rows(a: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    sum_rows_into(a, &mut out)?;
    Ok(out)
}

/// [`sum_rows`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`sum_rows`]; `out` is untouched on error.
pub fn sum_rows_into(a: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (_, n) = require_rank2("sum_rows", a)?;
    out.reset(&[n]);
    let od = out.data_mut();
    for row in a.data().chunks_exact(n) {
        for (o, &x) in od.iter_mut().zip(row) {
            *o += x;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let v = t(vec![0.0; 3], &[3]);
        assert!(matches!(matmul(&v, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, -1.0, 0.5, 2.0, 0.0, 1.0], &[3, 2]);
        let via_t = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let direct = matmul_tn(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![0.5, -1.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let direct = matmul_nt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn bias_and_sum_rows_round_trip() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = t(vec![1.0, -2.0], &[2]);
        add_bias_rows(&mut a, &bias).unwrap();
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.data(), &[3.0, -6.0]);
    }

    #[test]
    fn bias_shape_is_checked() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = Tensor::zeros(&[3]);
        assert!(add_bias_rows(&mut a, &bias).is_err());
    }

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        // A sprinkle of exact zeros exercises the skip-zero fast path.
        let data = (0..n)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.1 {
                    0.0
                } else {
                    rng.random_range(-1.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    /// The blocked kernels must match the naive references *bit for bit*
    /// on shapes that straddle the tile and K-panel boundaries — this is
    /// the contract the engine's serial-vs-parallel determinism rests on.
    #[test]
    fn blocked_kernels_are_bit_identical_to_references() {
        for (case, (m, k, n)) in
            [(1, 1, 1), (3, 200, 5), (70, 130, 65), (129, 64, 33), (64, 128, 64)].iter().enumerate()
        {
            let a = random(&[*m, *k], 11 + case as u64);
            let b = random(&[*k, *n], 23 + case as u64);
            assert_eq!(
                matmul(&a, &b).unwrap().data(),
                matmul_reference(&a, &b).unwrap().data(),
                "matmul {m}x{k}x{n}"
            );

            let at = random(&[*k, *m], 31 + case as u64);
            assert_eq!(
                matmul_tn(&at, &b).unwrap().data(),
                matmul_tn_reference(&at, &b).unwrap().data(),
                "matmul_tn {m}x{k}x{n}"
            );

            let bt = random(&[*n, *k], 47 + case as u64);
            assert_eq!(
                matmul_nt(&a, &bt).unwrap().data(),
                matmul_nt_reference(&a, &bt).unwrap().data(),
                "matmul_nt {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn reference_kernels_validate_shapes_like_the_blocked_ones() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matches!(matmul_reference(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let c = t(vec![0.0; 8], &[4, 2]);
        assert!(matches!(matmul_tn_reference(&a, &c), Err(TensorError::ShapeMismatch { .. })));
        let d = t(vec![0.0; 8], &[2, 4]);
        assert!(matches!(matmul_nt_reference(&a, &d), Err(TensorError::ShapeMismatch { .. })));
    }
}
