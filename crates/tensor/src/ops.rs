//! Matrix operations: multiplication, transposition, bias broadcast.
//!
//! These free functions implement the handful of dense linear-algebra
//! primitives the network stack needs. `matmul` is a straightforward
//! `i-k-j` loop ordering (unit-stride inner loop over the output row) which
//! is cache-friendly enough for the layer sizes used in the paper's models.

use crate::{Tensor, TensorError};

fn require_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize), TensorError> {
    let dims = t.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, got: dims.len() });
    }
    Ok((dims[0], dims[1]))
}

/// Dense matrix product `A (m×k) · B (k×n) → C (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    let (kb, n) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// `Aᵀ (k×m) · B (k×n) → C (m×n)` without materialising the transpose.
///
/// Used for weight gradients (`xᵀ · dy`).
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *rows* of both operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = require_rank2("matmul_tn", a)?;
    let (kb, n) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// `A (m×k) · Bᵀ (n×k) → C (m×n)` without materialising the transpose.
///
/// Used for input gradients (`dy · Wᵀ`).
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *columns* of both operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    let (n, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o += acc;
        }
    }
    Ok(out)
}

/// Transpose of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n) = require_rank2("transpose", a)?;
    let mut out = Tensor::zeros(&[n, m]);
    let ad = a.data();
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

/// Adds a length-`n` bias row to every row of an `m×n` matrix, in place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not `[n]`.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) -> Result<(), TensorError> {
    let (_, n) = require_rank2("add_bias_rows", a)?;
    if bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: a.dims().to_vec(),
            rhs: bias.dims().to_vec(),
        });
    }
    let bd = bias.data().to_vec();
    for row in a.data_mut().chunks_exact_mut(n) {
        for (x, b) in row.iter_mut().zip(&bd) {
            *x += b;
        }
    }
    Ok(())
}

/// Sums an `m×n` matrix over its rows, producing a length-`n` vector.
///
/// This is the bias gradient for a batched linear layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn sum_rows(a: &Tensor) -> Result<Tensor, TensorError> {
    let (_, n) = require_rank2("sum_rows", a)?;
    let mut out = Tensor::zeros(&[n]);
    let od = out.data_mut();
    for row in a.data().chunks_exact(n) {
        for (o, &x) in od.iter_mut().zip(row) {
            *o += x;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let v = t(vec![0.0; 3], &[3]);
        assert!(matches!(matmul(&v, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, -1.0, 0.5, 2.0, 0.0, 1.0], &[3, 2]);
        let via_t = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let direct = matmul_tn(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![0.5, -1.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let direct = matmul_nt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn bias_and_sum_rows_round_trip() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = t(vec![1.0, -2.0], &[2]);
        add_bias_rows(&mut a, &bias).unwrap();
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.data(), &[3.0, -6.0]);
    }

    #[test]
    fn bias_shape_is_checked() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = Tensor::zeros(&[3]);
        assert!(add_bias_rows(&mut a, &bias).is_err());
    }
}
