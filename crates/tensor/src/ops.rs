//! Matrix operations: multiplication, transposition, bias broadcast.
//!
//! These free functions implement the handful of dense linear-algebra
//! primitives the network stack needs. The three matmul variants
//! (`matmul`, `matmul_nt`, `matmul_tn`) all run the packed,
//! register-blocked microkernel architecture of [`crate::gemm`]: `B` is
//! packed into `NR`-wide column panels ([`crate::gemm::PackedB`]),
//! transposed `A` operands into `MR`-row tiles ([`crate::gemm::PackedA`]),
//! and an `MR × NR` register tile accumulates each output block in one
//! pass over the shared dimension. Output row tiles execute in parallel on
//! the [`aergia_runtime`] work-stealing pool once a product is worth
//! threading (`PAR_FLOPS`).
//!
//! Three tiers of the same contract coexist here:
//!
//! * **packed** ([`matmul_packed_into`], [`matmul_nt_packed_into`],
//!   [`matmul_tn_packed_into`]) — the hot path: the caller owns the packs,
//!   so a cached weight pack is reused across calls and transient packs
//!   recycle through [`crate::Workspace`] pools (zero steady-state
//!   allocations);
//! * **plain** ([`matmul_into`] & friends) — same kernels behind the
//!   classic two-operand signatures, packing into a transient buffer per
//!   call (they allocate; hot loops should hold packs instead);
//! * **blocked** ([`matmul_blocked_into`] & friends) — the previous
//!   generation of loop-tiled scalar kernels, retained as a second oracle
//!   and as the baseline the `crit_tensor` GFLOP/s sweep measures the
//!   microkernel against.
//!
//! # Determinism
//!
//! No tier ever reorders floating-point accumulation: for every output
//! element the contributions along the shared dimension are added in
//! ascending-`k` order from `+0.0`, exactly as the reference kernels
//! ([`matmul_reference`], [`matmul_nt_reference`], [`matmul_tn_reference`])
//! do, and parallel tiles write disjoint output rows at fixed boundaries.
//! All tiers are therefore **bit-identical** to the references and to
//! themselves at any thread count — the property the engine's
//! serial-vs-parallel equivalence suite relies on (enforced by unit tests
//! here and the property suite in `tests/proptests.rs`; see
//! [`crate::gemm`] for why the register tile preserves the contract).

use crate::gemm::{
    active_isa, gemm_packed, gemm_packed_tn, gemm_rows_tile, KernelVariant, PackedA, PackedB,
    K_BLOCK,
};
use crate::{Tensor, TensorError};

/// Output rows per parallel task: big enough to amortise a pool spawn,
/// small enough that the paper's im2col matrices (thousands of patch rows)
/// split into many tiles. A multiple of [`crate::gemm::MR`], so parallel
/// tile boundaries coincide with microkernel sub-tile boundaries.
pub(crate) const TILE_ROWS: usize = 64;

/// Multiply-accumulate count below which a product runs on the calling
/// thread: at ~1 ns/flop the threshold (~260k) is a few hundred
/// microseconds, comfortably above the pool's per-tile overhead.
const PAR_FLOPS: usize = 1 << 18;

/// Width of the fixed-size chunks the elementwise kernels
/// ([`add_bias_rows`], [`sum_rows_into`]) process per step — a bounded
/// inner loop the autovectorizer reliably lifts to SIMD.
pub(crate) const LANES: usize = 8;

/// Runs `kernel` over the output rows of an `m×n` matrix, tiling and
/// parallelising when `flops` clears [`PAR_FLOPS`] and the global pool has
/// workers. `kernel(first_row, rows)` must write only the rows it is
/// handed; tile boundaries are fixed by [`TILE_ROWS`], so results never
/// depend on the pool size.
pub(crate) fn run_row_tiles(
    out: &mut [f32],
    n: usize,
    flops: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if flops >= PAR_FLOPS && aergia_runtime::parallelism() > 1 {
        aergia_runtime::par_chunks_mut(out, TILE_ROWS * n, |tile, rows| {
            kernel(tile * TILE_ROWS, rows);
        });
    } else {
        kernel(0, out);
    }
}

pub(crate) fn require_rank2(op: &'static str, t: &Tensor) -> Result<(usize, usize), TensorError> {
    let dims = t.dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, got: dims.len() });
    }
    Ok((dims[0], dims[1]))
}

/// Dense matrix product `A (m×k) · B (k×n) → C (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul`] writing into a caller-provided tensor: `out` is
/// [`Tensor::reset`] to `[m, n]` (reusing its allocation when the capacity
/// suffices) and then overwritten with the product, bit-identically to the
/// allocating kernel.
///
/// Packs `B` into a transient buffer per call; steady-state loops should
/// hold a [`PackedB`] and call [`matmul_packed_into`] instead.
///
/// # Errors
///
/// Same error conditions as [`matmul`]; `out` is untouched on error.
///
/// # Examples
///
/// ```
/// use aergia_tensor::{ops, Tensor};
/// # fn main() -> Result<(), aergia_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::eye(2);
/// let mut out = Tensor::default();
/// ops::matmul_into(&a, &b, &mut out)?;
/// assert_eq!(out.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (_, ka) = require_rank2("matmul", a)?;
    let (kb, _) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut pb = PackedB::new();
    pb.pack_with(b, KernelVariant::default_for(active_isa()))?;
    matmul_packed_into(a, &pb, out)
}

/// `C = A · B` with `B` already packed: the zero-allocation hot-path
/// spelling of [`matmul_into`], bit-identical to it and to
/// [`matmul_reference`].
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2 and
/// [`TensorError::ShapeMismatch`] if `a`'s columns disagree with the
/// pack's `k`; `out` is untouched on error.
///
/// # Panics
///
/// Panics if `pb` is stale ([`PackedB::is_valid`] is false) — pack or
/// `ensure` it first.
pub fn matmul_packed_into(a: &Tensor, pb: &PackedB, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    assert!(pb.is_valid(), "matmul_packed_into: stale PackedB (pack or ensure it first)");
    if ka != pb.k() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: vec![pb.k(), pb.n()],
        });
    }
    out.reset(&[m, pb.n()]);
    gemm_packed::<true>(a.data(), ka, pb, out.data_mut());
    Ok(())
}

/// The naive `i-k-j` matmul kept as the oracle for the packed and blocked
/// kernels (property tests assert exact equality on random shapes). Skips
/// exact-zero `A` elements — the historical sparsity fast path whose
/// semantics every faster tier replicates bit for bit (the packed SIMD
/// kernels as a guarded skip, see [`crate::gemm`]).
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    let (kb, n) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
    }
    Ok(out)
}

/// The previous-generation loop-tiled `matmul` kernel (`K_BLOCK`-panelled
/// scalar row streams over an unpacked `B`), retained as a second
/// bit-identical oracle and as the baseline the GFLOP/s sweep compares the
/// packed microkernel against.
///
/// # Errors
///
/// Same error conditions as [`matmul`]; `out` is untouched on error.
pub fn matmul_blocked_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul", a)?;
    let (kb, n) = require_rank2("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        // Panels of B (`K_BLOCK × n`) stream over the whole row tile; for a
        // fixed output element the `k` order is still strictly ascending,
        // so the accumulation matches `matmul_reference` bit for bit.
        for k0 in (0..ka).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(ka);
            for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
                let arow = &ad[(first_row + r) * ka..(first_row + r + 1) * ka];
                for (k, &aik) in arow[k0..k1].iter().enumerate().map(|(k, v)| (k0 + k, v)) {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[k * n..(k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    });
    Ok(())
}

/// `Aᵀ (k×m) · B (k×n) → C (m×n)` without materialising the transpose.
///
/// Used for weight gradients (`xᵀ · dy`).
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *rows* of both operands.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_tn_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_tn`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// Packs both operands into transient buffers per call; steady-state loops
/// should hold a [`PackedA`]/[`PackedB`] pair (e.g. from the
/// [`crate::Workspace`] pack pools) and call [`matmul_tn_packed_into`].
///
/// # Errors
///
/// Same error conditions as [`matmul_tn`]; `out` is untouched on error.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (ka, _) = require_rank2("matmul_tn", a)?;
    let (kb, _) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let variant = KernelVariant::default_for(active_isa());
    let mut pa = PackedA::new();
    pa.pack_transposed_with(a, variant)?;
    let mut pb = PackedB::new();
    pb.pack_with(b, variant)?;
    matmul_tn_packed_into(&pa, &pb, out)
}

/// `C = Aᵀ · B` with both operands already packed ([`PackedA`] row tiles
/// of `aᵀ`, [`PackedB`] column panels of `b`): the zero-allocation
/// hot-path spelling of [`matmul_tn_into`], bit-identical to it and to
/// [`matmul_tn_reference`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the packs' shared dimensions
/// disagree; `out` is untouched on error.
///
/// # Panics
///
/// Panics if either pack is stale ([`PackedA::is_valid`] /
/// [`PackedB::is_valid`] is false) or if the packs were laid out for
/// different kernel variants.
pub fn matmul_tn_packed_into(
    pa: &PackedA,
    pb: &PackedB,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    assert!(pa.is_valid(), "matmul_tn_packed_into: stale PackedA (pack it first)");
    assert!(pb.is_valid(), "matmul_tn_packed_into: stale PackedB (pack or ensure it first)");
    if pa.k() != pb.k() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: vec![pa.k(), pa.m()],
            rhs: vec![pb.k(), pb.n()],
        });
    }
    out.reset(&[pa.m(), pb.n()]);
    gemm_packed_tn(pa, pb, out.data_mut());
    Ok(())
}

/// The naive `k-i-j` transposed-A matmul kept as the oracle for the packed
/// and blocked kernels.
///
/// # Errors
///
/// Same error conditions as [`matmul_tn`].
pub fn matmul_tn_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = require_rank2("matmul_tn", a)?;
    let (kb, n) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                *o += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// The previous-generation tiled `matmul_tn` kernel (unpacked operands,
/// scalar saxpy rows), retained as a second bit-identical oracle and as
/// the GFLOP/s sweep baseline.
///
/// # Errors
///
/// Same error conditions as [`matmul_tn`]; `out` is untouched on error.
pub fn matmul_tn_blocked_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (ka, m) = require_rank2("matmul_tn", a)?;
    let (kb, n) = require_rank2("matmul_tn", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        for k in 0..ka {
            let arow = &ad[k * m..(k + 1) * m];
            let brow = &bd[k * n..(k + 1) * n];
            for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
                let aki = arow[first_row + r];
                if aki == 0.0 {
                    continue;
                }
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o += aki * bkj;
                }
            }
        }
    });
    Ok(())
}

/// `A (m×k) · Bᵀ (n×k) → C (m×n)` without materialising the transpose.
///
/// Used for linear/conv forwards (`x · Wᵀ`) and input gradients.
///
/// # Errors
///
/// Same error conditions as [`matmul`], with the shared dimension being the
/// *columns* of both operands.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    matmul_nt_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_nt`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// Transpose-packs `B` into a transient buffer per call; steady-state
/// loops should cache a [`PackedB::pack_transposed`] pack and call
/// [`matmul_nt_packed_into`].
///
/// # Errors
///
/// Same error conditions as [`matmul_nt`]; `out` is untouched on error.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (_, ka) = require_rank2("matmul_nt", a)?;
    let (_, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut pb = PackedB::new();
    pb.pack_transposed_with(b, KernelVariant::default_for(active_isa()))?;
    matmul_nt_packed_into(a, &pb, out)
}

/// `C = A · Bᵀ` with `Bᵀ` already packed (via
/// [`PackedB::pack_transposed`]): the zero-allocation hot-path spelling of
/// [`matmul_nt_into`], bit-identical to it and to [`matmul_nt_reference`].
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2 and
/// [`TensorError::ShapeMismatch`] if `a`'s columns disagree with the
/// pack's `k`; `out` is untouched on error.
///
/// # Panics
///
/// Panics if `pb` is stale ([`PackedB::is_valid`] is false).
pub fn matmul_nt_packed_into(
    a: &Tensor,
    pb: &PackedB,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    assert!(pb.is_valid(), "matmul_nt_packed_into: stale PackedB (pack or ensure it first)");
    if ka != pb.k() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: vec![pb.n(), pb.k()],
        });
    }
    out.reset(&[m, pb.n()]);
    gemm_packed::<false>(a.data(), ka, pb, out.data_mut());
    Ok(())
}

/// [`matmul_nt_packed_into`] over several independent `A`/`out` pairs
/// sharing one weight pack: `out_i = A_i · Bᵀ` for every slab. This is the
/// cross-client fused forward entry point — stage-1 clients training from
/// the same frozen broadcast batch their forward GEMMs into one call, so
/// the shared pack is read once while `C = Σ clients × batch` output rows
/// stream through the pool.
///
/// **Bit-identity by construction:** each slab is tiled at its own
/// fixed row-tile boundaries starting from its own row 0 and computed by
/// the same per-tile kernel as [`matmul_nt_packed_into`] — the fusion only
/// changes which scope the tiles are spawned into (one shared scope
/// instead of one per slab), never any element's accumulation chain, so
/// fused output is byte-identical to per-slab calls at any pool size.
/// The parallel/serial cutover considers the *combined* flops, which again
/// only moves work between threads, never changes results.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any `a` is not rank 2 and
/// [`TensorError::ShapeMismatch`] if any `a`'s columns disagree with the
/// pack's `k`; no output is written on error.
///
/// # Panics
///
/// Panics if `pb` is stale ([`PackedB::is_valid`] is false).
pub fn matmul_nt_packed_multi_into(
    slabs: &mut [(&Tensor, &mut Tensor)],
    pb: &PackedB,
) -> Result<(), TensorError> {
    assert!(pb.is_valid(), "matmul_nt_packed_multi_into: stale PackedB (pack or ensure it first)");
    let (k, n) = (pb.k(), pb.n());
    let mut total_flops = 0usize;
    for (a, _) in slabs.iter() {
        let (m, ka) = require_rank2("matmul_nt", a)?;
        if ka != k {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: a.dims().to_vec(),
                rhs: vec![n, k],
            });
        }
        total_flops += m * n * k;
    }
    for (a, out) in slabs.iter_mut() {
        out.reset(&[a.dims()[0], n]);
    }
    if total_flops >= PAR_FLOPS && aergia_runtime::parallelism() > 1 && n > 0 {
        aergia_runtime::scope(|s| {
            for (a, out) in slabs.iter_mut() {
                let ad: &[f32] = a.data();
                for (tile, rows) in out.data_mut().chunks_mut(TILE_ROWS * n).enumerate() {
                    s.spawn(move || gemm_rows_tile::<false>(ad, k, pb, tile * TILE_ROWS, rows));
                }
            }
        });
    } else {
        for (a, out) in slabs.iter_mut() {
            gemm_rows_tile::<false>(a.data(), k, pb, 0, out.data_mut());
        }
    }
    Ok(())
}

/// The naive row-dot-row transposed-B matmul kept as the oracle for the
/// packed and blocked kernels.
///
/// # Errors
///
/// Same error conditions as [`matmul_nt`].
pub fn matmul_nt_reference(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    let (n, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * ka..(j + 1) * ka];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o += acc;
        }
    }
    Ok(out)
}

/// The previous-generation tiled `matmul_nt` kernel (scalar dot products
/// over unpacked rows), retained as a second bit-identical oracle and as
/// the GFLOP/s sweep baseline.
///
/// # Errors
///
/// Same error conditions as [`matmul_nt`]; `out` is untouched on error.
pub fn matmul_nt_blocked_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = require_rank2("matmul_nt", a)?;
    let (n, kb) = require_rank2("matmul_nt", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    out.reset(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    run_row_tiles(out.data_mut(), n, m * n * ka, |first_row, rows| {
        // Each output element is one dot product accumulated in a single
        // register over ascending `k`.
        for (r, orow) in rows.chunks_exact_mut(n).enumerate() {
            let arow = &ad[(first_row + r) * ka..(first_row + r + 1) * ka];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * ka..(j + 1) * ka];
                let mut acc = 0.0;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    });
    Ok(())
}

/// Transpose of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n) = require_rank2("transpose", a)?;
    let mut out = Tensor::zeros(&[n, m]);
    let ad = a.data();
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

/// Adds a length-`n` bias row to every row of an `m×n` matrix, in place.
///
/// The row loop runs in `LANES`-wide chunks plus a scalar tail; each
/// element still sees exactly one `x += b`, so results are bit-identical
/// to the scalar formulation whatever the chunking.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `bias` is not `[n]`.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) -> Result<(), TensorError> {
    let (_, n) = require_rank2("add_bias_rows", a)?;
    if bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: a.dims().to_vec(),
            rhs: bias.dims().to_vec(),
        });
    }
    let bd = bias.data();
    let split = n - n % LANES;
    let (bc, bt) = bd.split_at(split);
    for row in a.data_mut().chunks_exact_mut(n) {
        let (rc, rt) = row.split_at_mut(split);
        for (rch, bch) in rc.chunks_exact_mut(LANES).zip(bc.chunks_exact(LANES)) {
            for (x, &b) in rch.iter_mut().zip(bch) {
                *x += b;
            }
        }
        for (x, &b) in rt.iter_mut().zip(bt) {
            *x += b;
        }
    }
    Ok(())
}

/// Sums an `m×n` matrix over its rows, producing a length-`n` vector.
///
/// This is the bias gradient for a batched linear layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn sum_rows(a: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = Tensor::default();
    sum_rows_into(a, &mut out)?;
    Ok(out)
}

/// [`sum_rows`] writing into a caller-provided tensor (see
/// [`matmul_into`] for the reuse contract).
///
/// # Errors
///
/// Same error conditions as [`sum_rows`]; `out` is untouched on error.
pub fn sum_rows_into(a: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (_, n) = require_rank2("sum_rows", a)?;
    out.reset(&[n]);
    let od = out.data_mut();
    let split = n - n % LANES;
    for row in a.data().chunks_exact(n) {
        let (oc, ot) = od.split_at_mut(split);
        let (rc, rt) = row.split_at(split);
        for (och, rch) in oc.chunks_exact_mut(LANES).zip(rc.chunks_exact(LANES)) {
            for (o, &x) in och.iter_mut().zip(rch) {
                *o += x;
            }
        }
        for (o, &x) in ot.iter_mut().zip(rt) {
            *o += x;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_small_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let v = t(vec![0.0; 3], &[3]);
        assert!(matches!(matmul(&v, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, -1.0, 0.5, 2.0, 0.0, 1.0], &[3, 2]);
        let via_t = matmul(&transpose(&a).unwrap(), &b).unwrap();
        let direct = matmul_tn(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![0.5, -1.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&a, &transpose(&b).unwrap()).unwrap();
        let direct = matmul_nt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn bias_and_sum_rows_round_trip() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = t(vec![1.0, -2.0], &[2]);
        add_bias_rows(&mut a, &bias).unwrap();
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.data(), &[3.0, -6.0]);
    }

    #[test]
    fn bias_and_sum_rows_cover_chunk_and_tail_widths() {
        // n = 2*LANES + 3 exercises both the chunked body and the tail.
        let n = 2 * LANES + 3;
        let mut a = Tensor::ones(&[3, n]);
        let bias = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n]).unwrap();
        add_bias_rows(&mut a, &bias).unwrap();
        let s = sum_rows(&a).unwrap();
        for (j, &v) in s.data().iter().enumerate() {
            assert_eq!(v, 3.0 * (1.0 + j as f32), "column {j}");
        }
    }

    #[test]
    fn bias_shape_is_checked() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = Tensor::zeros(&[3]);
        assert!(add_bias_rows(&mut a, &bias).is_err());
    }

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        // A sprinkle of exact zeros exercises the 0-times-anything paths.
        let data = (0..n)
            .map(|_| {
                if rng.random_range(0.0..1.0) < 0.1 {
                    0.0
                } else {
                    rng.random_range(-1.0f32..1.0)
                }
            })
            .collect();
        Tensor::from_vec(data, dims).unwrap()
    }

    /// The packed and blocked kernels must match the naive references *bit
    /// for bit* on shapes that straddle the tile, panel and microkernel
    /// boundaries — this is the contract the engine's serial-vs-parallel
    /// determinism rests on.
    #[test]
    fn packed_and_blocked_kernels_are_bit_identical_to_references() {
        for (case, (m, k, n)) in
            [(1, 1, 1), (3, 200, 5), (70, 130, 65), (129, 64, 33), (64, 128, 64)].iter().enumerate()
        {
            let mut blocked = Tensor::default();

            let a = random(&[*m, *k], 11 + case as u64);
            let b = random(&[*k, *n], 23 + case as u64);
            let reference = matmul_reference(&a, &b).unwrap();
            assert_eq!(matmul(&a, &b).unwrap().data(), reference.data(), "matmul {m}x{k}x{n}");
            matmul_blocked_into(&a, &b, &mut blocked).unwrap();
            assert_eq!(blocked.data(), reference.data(), "matmul blocked {m}x{k}x{n}");

            let at = random(&[*k, *m], 31 + case as u64);
            let reference = matmul_tn_reference(&at, &b).unwrap();
            assert_eq!(matmul_tn(&at, &b).unwrap().data(), reference.data(), "tn {m}x{k}x{n}");
            matmul_tn_blocked_into(&at, &b, &mut blocked).unwrap();
            assert_eq!(blocked.data(), reference.data(), "tn blocked {m}x{k}x{n}");

            let bt = random(&[*n, *k], 47 + case as u64);
            let reference = matmul_nt_reference(&a, &bt).unwrap();
            assert_eq!(matmul_nt(&a, &bt).unwrap().data(), reference.data(), "nt {m}x{k}x{n}");
            matmul_nt_blocked_into(&a, &bt, &mut blocked).unwrap();
            assert_eq!(blocked.data(), reference.data(), "nt blocked {m}x{k}x{n}");
        }
    }

    /// The fused multi-slab driver must be byte-identical to per-slab
    /// packed calls — the property the cross-client fused forward rests
    /// on — including ragged slab sizes straddling the parallel cutover.
    #[test]
    fn multi_slab_nt_matches_per_slab_calls_bitwise() {
        let bt = random(&[24, 40], 90); // pack of a [n=24, k=40] weight
        let mut pb = PackedB::new();
        pb.pack_transposed(&bt).unwrap();
        let sizes = [1usize, 63, 64, 130, 7];
        let slabs_a: Vec<Tensor> =
            sizes.iter().enumerate().map(|(i, &m)| random(&[m, 40], 300 + i as u64)).collect();
        let mut fused: Vec<Tensor> = sizes.iter().map(|_| Tensor::default()).collect();
        {
            let mut slabs: Vec<(&Tensor, &mut Tensor)> =
                slabs_a.iter().zip(fused.iter_mut()).collect();
            matmul_nt_packed_multi_into(&mut slabs, &pb).unwrap();
        }
        for (i, a) in slabs_a.iter().enumerate() {
            let mut single = Tensor::default();
            matmul_nt_packed_into(a, &pb, &mut single).unwrap();
            assert_eq!(fused[i].dims(), single.dims());
            let f: Vec<u32> = fused[i].data().iter().map(|v| v.to_bits()).collect();
            let s: Vec<u32> = single.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(f, s, "slab {i}");
        }
    }

    #[test]
    fn multi_slab_nt_validates_every_slab_before_writing() {
        let bt = random(&[4, 6], 91);
        let mut pb = PackedB::new();
        pb.pack_transposed(&bt).unwrap();
        let good = random(&[3, 6], 92);
        let bad = random(&[3, 5], 93); // k mismatch
        let mut out_a = Tensor::default();
        let mut out_b = Tensor::default();
        let mut slabs: Vec<(&Tensor, &mut Tensor)> = vec![(&good, &mut out_a), (&bad, &mut out_b)];
        assert!(matches!(
            matmul_nt_packed_multi_into(&mut slabs, &pb),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(out_a.dims().is_empty(), "no slab may be written on error");
    }

    #[test]
    fn packed_entry_points_validate_shapes_and_staleness() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 8], &[4, 2]);
        let mut pb = PackedB::new();
        pb.pack(&b).unwrap();
        let mut out = Tensor::default();
        // k mismatch: a has 3 columns, the pack has k = 4.
        assert!(matches!(
            matmul_packed_into(&a, &pb, &mut out),
            Err(TensorError::ShapeMismatch { .. })
        ));
        pb.invalidate();
        let ok = t(vec![0.0; 8], &[2, 4]);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Tensor::default();
            let _ = matmul_packed_into(&ok, &pb, &mut out);
        }));
        assert!(stale.is_err(), "stale pack must panic");
    }

    #[test]
    fn reference_kernels_validate_shapes_like_the_packed_ones() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matches!(matmul_reference(&a, &b), Err(TensorError::ShapeMismatch { .. })));
        let c = t(vec![0.0; 8], &[4, 2]);
        assert!(matches!(matmul_tn_reference(&a, &c), Err(TensorError::ShapeMismatch { .. })));
        let d = t(vec![0.0; 8], &[2, 4]);
        assert!(matches!(matmul_nt_reference(&a, &d), Err(TensorError::ShapeMismatch { .. })));
    }
}
