//! Shape bookkeeping and the crate error type.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The dimensions of a [`crate::Tensor`], outermost dimension first.
///
/// A `Shape` is a thin, validated wrapper around a `Vec<usize>`; every
/// dimension must be non-zero (rank-0 shapes are allowed and describe a
/// scalar with one element).
///
/// # Examples
///
/// ```
/// use aergia_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]).unwrap();
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ZeroDim`] if any dimension is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if let Some(&d) = dims.iter().find(|&&d| d == 0) {
            return Err(TensorError::ZeroDim { dim: d, dims: dims.to_vec() });
        }
        Ok(Shape(dims.to_vec()))
    }

    /// The dimensions as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Overwrites the dimensions in place, reusing the backing allocation
    /// (ranks are tiny, so the capacity stabilises after the first few
    /// calls) — the allocation-free path behind [`crate::Tensor::reset`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ZeroDim`] if any dimension is zero; the
    /// shape is unchanged on error.
    pub(crate) fn set_dims(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        if let Some(&d) = dims.iter().find(|&&d| d == 0) {
            return Err(TensorError::ZeroDim { dim: d, dims: dims.to_vec() });
        }
        self.0.clear();
        self.0.extend_from_slice(dims);
        Ok(())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements described by this shape.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use aergia_tensor::Shape;
    /// let s = Shape::new(&[2, 3, 4]).unwrap();
    /// assert_eq!(s.strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self, Self::Error> {
        Shape::new(dims)
    }
}

/// Errors produced by tensor construction and tensor algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A shape contained a zero-sized dimension.
    ZeroDim {
        /// The offending dimension (always zero).
        dim: usize,
        /// The full requested dimension list.
        dims: Vec<usize>,
    },
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Number of elements in the provided buffer.
        len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// An operation required a particular rank (e.g. matmul requires 2).
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank it was given.
        got: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ZeroDim { dims, .. } => {
                write!(f, "shape {dims:?} contains a zero-sized dimension")
            }
            TensorError::LengthMismatch { len, expected } => {
                write!(f, "buffer of {len} elements does not fill shape of {expected} elements")
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch { op, expected, got } => {
                write!(f, "{op}: expected rank {expected}, got rank {got}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_rejects_zero_dim() {
        assert!(matches!(Shape::new(&[2, 0, 3]), Err(TensorError::ZeroDim { .. })));
    }

    #[test]
    fn shape_scalar_has_one_element() {
        let s = Shape::new(&[]).unwrap();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 2, 3]).unwrap();
        assert_eq!(s.strides(), vec![6, 3, 1]);
    }

    #[test]
    fn display_is_compact() {
        let s = Shape::new(&[2, 3]).unwrap();
        assert_eq!(s.to_string(), "[2x3]");
    }

    #[test]
    fn error_display_is_lowercase_without_period() {
        let e = TensorError::LengthMismatch { len: 3, expected: 4 };
        let msg = e.to_string();
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn try_from_slice_round_trips() {
        let s = Shape::try_from(&[5usize, 6][..]).unwrap();
        assert_eq!(s.dims(), &[5, 6]);
    }
}
