//! Property-based tests for tensor algebra: matmul laws against a naive
//! reference, transpose involution, im2col/col2im adjointness.

use aergia_tensor::conv::{col2im, im2col, nchw_to_rows, rows_to_nchw, ConvGeometry};
use aergia_tensor::{ops, Tensor};
use proptest::prelude::*;

const EPS: f32 = 1e-4;

fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data()).all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs()))
}

/// Naive triple-loop matmul used as the oracle.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.data()[i * k + l] * b.data()[l * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("sized vec"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_naive(
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6),
        seed in any::<u64>(),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec((0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect(), &[m, k]).unwrap();
        let b = Tensor::from_vec((0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect(), &[k, n]).unwrap();
        let fast = ops::matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        prop_assert!(approx_eq(&fast, &slow, EPS));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(3, 4), c in matrix(4, 2)) {
        let lhs = ops::matmul(&a.add(&b), &c).unwrap();
        let rhs = ops::matmul(&a, &c).unwrap().add(&ops::matmul(&b, &c).unwrap());
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_nt_agree_with_transposes(a in matrix(4, 3), b in matrix(4, 2), c in matrix(5, 3)) {
        let tn = ops::matmul_tn(&a, &b).unwrap();
        let tn_ref = ops::matmul(&ops::transpose(&a).unwrap(), &b).unwrap();
        prop_assert!(approx_eq(&tn, &tn_ref, EPS));

        let d = matrix_from(&a); // (4,3)
        let nt = ops::matmul_nt(&d, &c).unwrap();
        let nt_ref = ops::matmul(&d, &ops::transpose(&c).unwrap()).unwrap();
        prop_assert!(approx_eq(&nt, &nt_ref, EPS));
    }

    /// The blocked/tiled kernels must be *bit-identical* to the naive
    /// references on arbitrary shapes, including ones that straddle the
    /// row-tile and K-panel boundaries: tiling reorders the loops but
    /// never the per-element accumulation order. The engine's
    /// serial-vs-parallel determinism guarantee stands on this.
    #[test]
    fn blocked_matmuls_match_references_exactly(
        m in 1usize..96, k in 1usize..96, n in 1usize..48,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    // Exact zeros exercise the skip-zero fast path.
                    if rng.random_range(0.0..1.0) < 0.1 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        let a = Tensor::from_vec(fill(m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
        prop_assert_eq!(
            ops::matmul(&a, &b).unwrap(),
            ops::matmul_reference(&a, &b).unwrap()
        );

        let at = Tensor::from_vec(fill(k * m), &[k, m]).unwrap();
        prop_assert_eq!(
            ops::matmul_tn(&at, &b).unwrap(),
            ops::matmul_tn_reference(&at, &b).unwrap()
        );

        let bt = Tensor::from_vec(fill(n * k), &[n, k]).unwrap();
        prop_assert_eq!(
            ops::matmul_nt(&a, &bt).unwrap(),
            ops::matmul_nt_reference(&a, &bt).unwrap()
        );
    }

    /// The `_into` kernels must match the naive references *bit for bit*
    /// regardless of the output buffer's prior shape or contents, and
    /// reusing the same buffer twice must reproduce the same bits — the
    /// contract the zero-allocation training hot path stands on.
    #[test]
    fn into_kernels_match_references_exactly_with_dirty_buffers(
        m in 1usize..80, k in 1usize..80, n in 1usize..40,
        seed in any::<u64>(),
        (gr, gc) in (1usize..7, 1usize..7),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < 0.1 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        let a = Tensor::from_vec(fill(m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
        // A garbage-filled, wrongly-shaped output buffer: `_into` must
        // fully define the result anyway.
        let mut out = Tensor::full(&[gr, gc], f32::NAN);
        ops::matmul_into(&a, &b, &mut out).unwrap();
        prop_assert_eq!(&out, &ops::matmul_reference(&a, &b).unwrap());
        ops::matmul_into(&a, &b, &mut out).unwrap();
        prop_assert_eq!(&out, &ops::matmul_reference(&a, &b).unwrap());

        let at = Tensor::from_vec(fill(k * m), &[k, m]).unwrap();
        ops::matmul_tn_into(&at, &b, &mut out).unwrap();
        prop_assert_eq!(&out, &ops::matmul_tn_reference(&at, &b).unwrap());

        let bt = Tensor::from_vec(fill(n * k), &[n, k]).unwrap();
        ops::matmul_nt_into(&a, &bt, &mut out).unwrap();
        prop_assert_eq!(&out, &ops::matmul_nt_reference(&a, &bt).unwrap());

        ops::sum_rows_into(&a, &mut out).unwrap();
        prop_assert_eq!(&out, &ops::sum_rows(&a).unwrap());
    }

    /// Same dirty-buffer contract for the convolution lowering: `im2col`
    /// relies on zero padding, so a reused buffer must be re-zeroed
    /// correctly before the patch scatter.
    #[test]
    fn conv_lowering_into_is_reproducible_with_dirty_buffers(
        n in 1usize..3, c in 1usize..3, h in 3usize..7, w in 3usize..7,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec(
            (0..n * c * h * w).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[n, c, h, w],
        ).unwrap();
        let geom = ConvGeometry::new(h, w, 3, 3, 1, pad);
        let fresh = im2col(&x, c, &geom).unwrap();
        let mut cols = Tensor::full(&[3, 5], f32::NAN);
        aergia_tensor::conv::im2col_into(&x, c, &geom, &mut cols).unwrap();
        prop_assert_eq!(&cols, &fresh);
        aergia_tensor::conv::im2col_into(&x, c, &geom, &mut cols).unwrap();
        prop_assert_eq!(&cols, &fresh);

        let back = col2im(&cols, n, c, &geom).unwrap();
        let mut im = Tensor::full(&[2], f32::NAN);
        aergia_tensor::conv::col2im_into(&cols, n, c, &geom, &mut im).unwrap();
        prop_assert_eq!(&im, &back);
    }

    #[test]
    fn transpose_is_involutive(a in matrix(3, 5)) {
        let tt = ops::transpose(&ops::transpose(&a).unwrap()).unwrap();
        prop_assert!(approx_eq(&a, &tt, 0.0));
    }

    #[test]
    fn axpy_then_inverse_restores(a in matrix(2, 6), b in matrix(2, 6), alpha in -2.0f32..2.0) {
        let mut x = a.clone();
        x.axpy(alpha, &b);
        x.axpy(-alpha, &b);
        prop_assert!(approx_eq(&x, &a, 1e-4));
    }

    #[test]
    fn nchw_rows_round_trip(
        n in 1usize..3, c in 1usize..4, h in 1usize..5, w in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec(
            (0..n * c * h * w).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[n, c, h, w],
        ).unwrap();
        let back = rows_to_nchw(&nchw_to_rows(&x).unwrap(), n, c, h, w).unwrap();
        prop_assert_eq!(back, x);
    }

    /// <x, col2im(y)> == <im2col(x), y>: col2im is the exact adjoint of im2col.
    #[test]
    fn col2im_is_adjoint_of_im2col(
        n in 1usize..3, c in 1usize..3,
        hw in 3usize..7, k in 1usize..4, pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt as _, SeedableRng};
        prop_assume!(hw + 2 * pad >= k);
        let geom = ConvGeometry::new(hw, hw, k, k, 1, pad);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec(
            (0..n * c * hw * hw).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[n, c, hw, hw],
        ).unwrap();
        let rows = n * geom.out_h * geom.out_w;
        let ckk = c * k * k;
        let y = Tensor::from_vec(
            (0..rows * ckk).map(|_| rng.random_range(-1.0..1.0)).collect(),
            &[rows, ckk],
        ).unwrap();

        let ix = im2col(&x, c, &geom).unwrap();
        let cy = col2im(&y, n, c, &geom).unwrap();
        let lhs: f32 = ix.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(cy.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn reshape_round_trip(a in matrix(4, 6)) {
        let flat = a.reshape(&[24]).unwrap();
        let back = flat.reshape(&[4, 6]).unwrap();
        prop_assert_eq!(back, a);
    }

    /// The packed-operand kernels must match the naive references *bit
    /// for bit* even when the pack buffers are dirty — reused across a
    /// sequence of different shapes, so each `pack_*` call writes into
    /// whatever the previous (larger or smaller) pack left behind. This
    /// is the contract the per-layer weight-pack caches and the workspace
    /// pack pools stand on.
    #[test]
    fn packed_kernels_match_references_with_dirty_reused_packs(
        shapes in proptest::collection::vec((1usize..48, 1usize..48, 1usize..24), 2..5),
        seed in any::<u64>(),
    ) {
        use aergia_tensor::gemm::{PackedA, PackedB};
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    // Exact zeros force the guarded skip path too.
                    if rng.random_range(0.0..1.0) < 0.15 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        // One pack of each kind survives the whole shape sequence.
        let mut pb = PackedB::new();
        let mut pbt = PackedB::new();
        let mut pa = PackedA::new();
        let mut out = Tensor::default();
        for &(m, k, n) in &shapes {
            let a = Tensor::from_vec(fill(m * k), &[m, k]).unwrap();
            let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
            pb.pack(&b).unwrap();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            prop_assert_eq!(out.data(), ops::matmul_reference(&a, &b).unwrap().data());

            let bt = Tensor::from_vec(fill(n * k), &[n, k]).unwrap();
            pbt.pack_transposed(&bt).unwrap();
            ops::matmul_nt_packed_into(&a, &pbt, &mut out).unwrap();
            prop_assert_eq!(out.data(), ops::matmul_nt_reference(&a, &bt).unwrap().data());

            let at = Tensor::from_vec(fill(k * m), &[k, m]).unwrap();
            pa.pack_transposed(&at).unwrap();
            ops::matmul_tn_packed_into(&pa, &pb, &mut out).unwrap();
            prop_assert_eq!(out.data(), ops::matmul_tn_reference(&at, &b).unwrap().data());

            // The retained blocked tier agrees bit-for-bit as well.
            let mut blocked = Tensor::default();
            ops::matmul_blocked_into(&a, &b, &mut blocked).unwrap();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            prop_assert_eq!(out.data(), blocked.data());
        }
    }

    /// Every kernel variant the autotuner may pick on this machine —
    /// scalar 4×8 and each SIMD register tile — must produce *the same
    /// bits* as the naive references for all three GEMM orientations, on
    /// ragged shapes that straddle the `mr` row-tile and `nr` panel
    /// boundaries. This is the contract that makes autotuning invisible:
    /// the tuner may pick any candidate on timing grounds alone.
    #[test]
    fn every_kernel_variant_matches_references_bitwise(
        m in 1usize..70, k in 1usize..70, n in 1usize..70,
        seed in any::<u64>(),
    ) {
        use aergia_tensor::gemm::{active_isa, KernelVariant, PackedA, PackedB};
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    // Exact zeros exercise the guarded skip path in every tier.
                    if rng.random_range(0.0..1.0) < 0.2 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        let a = Tensor::from_vec(fill(m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
        let bt = Tensor::from_vec(fill(n * k), &[n, k]).unwrap();
        let at = Tensor::from_vec(fill(k * m), &[k, m]).unwrap();
        let nn_ref = ops::matmul_reference(&a, &b).unwrap();
        let nt_ref = ops::matmul_nt_reference(&a, &bt).unwrap();
        let tn_ref = ops::matmul_tn_reference(&at, &b).unwrap();

        let mut pb = PackedB::new();
        let mut pbt = PackedB::new();
        let mut pa = PackedA::new();
        let mut out = Tensor::default();
        for &variant in KernelVariant::candidates(active_isa()) {
            pb.pack_with(&b, variant).unwrap();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            prop_assert_eq!(out.data(), nn_ref.data(), "NN {:?}", variant);

            pbt.pack_transposed_with(&bt, variant).unwrap();
            ops::matmul_nt_packed_into(&a, &pbt, &mut out).unwrap();
            prop_assert_eq!(out.data(), nt_ref.data(), "NT {:?}", variant);

            pa.pack_transposed_with(&at, variant).unwrap();
            ops::matmul_tn_packed_into(&pa, &pb, &mut out).unwrap();
            prop_assert_eq!(out.data(), tn_ref.data(), "TN {:?}", variant);
        }
    }

    /// Re-packing the *same* buffers for a different variant (a different
    /// panel width, so a completely different pad layout) must be exact no
    /// matter which variant wrote the buffer last — the situation the
    /// workspace pack pools create when consecutive layers tune to
    /// different register tiles.
    #[test]
    fn switching_variants_over_dirty_packs_is_exact(
        shapes in proptest::collection::vec(
            (1usize..48, 1usize..48, 1usize..40, 0usize..8), 2..5),
        seed in any::<u64>(),
    ) {
        use aergia_tensor::gemm::{active_isa, KernelVariant, PackedA, PackedB};
        use rand::{RngExt as _, SeedableRng};
        let candidates = KernelVariant::candidates(active_isa());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < 0.15 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        let mut pb = PackedB::new();
        let mut pa = PackedA::new();
        let mut out = Tensor::default();
        for &(m, k, n, pick) in &shapes {
            let variant = candidates[pick % candidates.len()];
            let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
            let at = Tensor::from_vec(fill(k * m), &[k, m]).unwrap();
            pb.pack_with(&b, variant).unwrap();
            pa.pack_transposed_with(&at, variant).unwrap();
            ops::matmul_tn_packed_into(&pa, &pb, &mut out).unwrap();
            prop_assert_eq!(
                out.data(),
                ops::matmul_tn_reference(&at, &b).unwrap().data(),
                "variant {:?}",
                variant
            );
        }
    }

    /// Non-finite inputs: infinities flow through mul/add identically in
    /// every tier (same accumulation order ⇒ same bits), and a NaN lands
    /// in exactly the same output elements. NaN *payloads* are the one
    /// thing the bit-identity contract does not pin — `x86` SIMD and
    /// scalar ops agree in practice, but the suite only asserts placement
    /// so the contract stays portable.
    #[test]
    fn non_finite_inputs_keep_placement_across_variants(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        seed in any::<u64>(),
    ) {
        use aergia_tensor::gemm::{active_isa, KernelVariant, PackedB};
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| match rng.random_range(0u32..20) {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 | 4 => 0.0,
                    _ => rng.random_range(-2.0f32..2.0),
                })
                .collect()
        };
        let a = Tensor::from_vec(fill(m * k), &[m, k]).unwrap();
        let b = Tensor::from_vec(fill(k * n), &[k, n]).unwrap();
        let reference = ops::matmul_reference(&a, &b).unwrap();
        let mut pb = PackedB::new();
        let mut out = Tensor::default();
        for &variant in KernelVariant::candidates(active_isa()) {
            pb.pack_with(&b, variant).unwrap();
            ops::matmul_packed_into(&a, &pb, &mut out).unwrap();
            for (i, (&got, &want)) in out.data().iter().zip(reference.data()).enumerate() {
                if want.is_nan() {
                    prop_assert!(got.is_nan(), "{:?}: element {i} lost a NaN", variant);
                } else {
                    prop_assert_eq!(
                        got.to_bits(), want.to_bits(),
                        "{:?}: element {i}: {} vs {}", variant, got, want
                    );
                }
            }
        }
    }

    /// The cross-client fused forward (`matmul_nt_packed_multi_into`) must
    /// be byte-identical to per-slab `matmul_nt` calls for any number of
    /// slabs with ragged, mutually different row counts — fusing batches
    /// work into one parallel scope but never changes an accumulation
    /// chain.
    #[test]
    fn fused_multi_slab_forward_matches_per_slab_bitwise(
        rows in proptest::collection::vec(1usize..20, 1..5),
        k in 1usize..32, n in 1usize..32,
        seed in any::<u64>(),
    ) {
        use aergia_tensor::gemm::{active_isa, KernelVariant, PackedB};
        use rand::{RngExt as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fill = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    if rng.random_range(0.0..1.0) < 0.15 { 0.0 } else { rng.random_range(-2.0f32..2.0) }
                })
                .collect()
        };
        let bt = Tensor::from_vec(fill(n * k), &[n, k]).unwrap();
        let mut pb = PackedB::new();
        pb.pack_transposed_with(&bt, KernelVariant::default_for(active_isa())).unwrap();
        let slabs: Vec<Tensor> = rows
            .iter()
            .map(|&m| Tensor::from_vec(fill(m * k), &[m, k]).unwrap())
            .collect();
        let mut fused: Vec<Tensor> = slabs.iter().map(|_| Tensor::default()).collect();
        {
            let mut pairs: Vec<(&Tensor, &mut Tensor)> =
                slabs.iter().zip(fused.iter_mut()).collect();
            ops::matmul_nt_packed_multi_into(&mut pairs, &pb).unwrap();
        }
        for (a, got) in slabs.iter().zip(&fused) {
            let mut single = Tensor::default();
            ops::matmul_nt_packed_into(a, &pb, &mut single).unwrap();
            prop_assert_eq!(got.data(), single.data());
            prop_assert_eq!(single.data(), ops::matmul_nt_reference(a, &bt).unwrap().data());
        }
    }
}

fn matrix_from(t: &Tensor) -> Tensor {
    t.clone()
}
