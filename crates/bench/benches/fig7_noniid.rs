//! Figure 7: accuracy and training time under non-IID data.
//!
//! Identical to the Figure 6 setup but every client samples only 3 of the
//! 10 classes (the paper's non-IID scenario, §5.1).

use aergia_bench::{algorithms, base_config, eval_pairs, f3, header, run_parallel, secs, Scale};
use aergia_data::partition::Scheme;

fn main() {
    let scale = Scale::from_env();
    header("Figure 7", "non-IID(3): final accuracy (a–c) and total training time (d–f)");

    for (spec, arch) in eval_pairs() {
        let algos = algorithms(scale);
        let jobs: Vec<_> = algos
            .iter()
            .map(|&s| {
                let mut config = base_config(scale, spec, arch, 44);
                config.partition = Scheme::paper_non_iid();
                (config, s)
            })
            .collect();
        let results = run_parallel(jobs);

        println!();
        println!("dataset: {spec} (non-IID, 3 classes per client)");
        println!(
            "{:<18}{:>12}{:>14}{:>14}{:>12}{:>12}",
            "algorithm", "accuracy", "total time", "mean round", "offloads", "pretrain"
        );
        for (strategy, result) in algos.iter().zip(&results) {
            println!(
                "{:<18}{:>12}{:>14}{:>14}{:>12}{:>12}",
                strategy.name(),
                f3(result.final_accuracy),
                secs(result.total_time().as_secs_f64()),
                secs(result.mean_round_secs()),
                result.total_offloads(),
                secs(result.pretraining.as_secs_f64()),
            );
        }
    }

    println!();
    println!(
        "expected shape (paper): Aergia cuts total time by ~27% vs FedAvg and ~53% vs\n\
         TiFL while keeping accuracy comparable to the non-IID-aware baselines\n\
         (FedNova may trail); non-IID accuracies sit below their Figure 6 values."
    );
}
