//! Figure 1(a): impact of CPU heterogeneity on round duration.
//!
//! Sweeps the variance of client speeds (mean fixed at 0.5 CPU, as in the
//! paper) for cluster sizes 2–7 and reports the round-duration multiplier
//! relative to the homogeneous cluster, averaged over several random
//! speed draws. Timing-only mode: the shape comes purely from the
//! synchronous protocol waiting for the slowest client.

use aergia::config::Mode;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, f3, header, run, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_simnet::cluster::random_speeds_with_variance;

fn main() {
    let scale = Scale::from_env();
    header("Figure 1(a)", "round-duration multiplier vs variance of client CPU speeds (mean 0.5)");

    // Mean speed 0.5 bounds the feasible variance (speeds clip at 0.05),
    // so we sweep the feasible part of the paper's 0–0.5 axis.
    let variances = [0.0, 0.01, 0.02, 0.05, 0.08, 0.12];
    let draws = scale.scaled(8, 3) as u64;

    print!("{:<10}", "clients");
    for v in variances {
        print!("{:>10}", format!("var={v}"));
    }
    println!();

    for clients in 2..=7usize {
        let mut cells: Vec<String> = Vec::new();
        let mut baseline = None;
        for &variance in &variances {
            let mut mean_round = 0.0;
            for draw in 0..draws {
                let mut config =
                    base_config(scale, DatasetSpec::MnistLike, ModelArch::MnistCnn, 11);
                config.num_clients = clients;
                config.clients_per_round = clients;
                config.rounds = 2;
                config.mode = Mode::Timing;
                config.speeds = random_speeds_with_variance(clients, 0.5, variance, draw * 7 + 1);
                mean_round += run(config, Strategy::FedAvg).mean_round_secs();
            }
            mean_round /= draws as f64;
            let base = *baseline.get_or_insert(mean_round);
            cells.push(f3(mean_round / base));
        }
        print!("{clients:<10}");
        for c in &cells {
            print!("{c:>10}");
        }
        println!();
    }

    println!();
    println!(
        "expected shape (paper): multiplier grows with variance and with cluster size,\n\
         reaching ≈1.5–2.25× at the right edge for the larger clusters."
    );
}
