//! §5.4 "Profiler": overhead of the online profiler.
//!
//! The paper reports a negligible overhead of 0.22% ± 0.09 of training
//! time. We measure it two ways: (i) the extra virtual time an Aergia run
//! spends on profile-report messages relative to the same run with a
//! minimal window, and (ii) the real wall-clock cost of the profiling
//! instrumentation in `train_batch` (timer reads per phase).

use aergia::config::Mode;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, header, run, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::profile::PhaseCost;

fn main() {
    let scale = Scale::from_env();
    header("§5.4 profiler overhead", "cost of online profiling (paper: 0.22% ± 0.09)");

    // (i) Protocol-level overhead: report messages on the virtual clock.
    let mut total_with = 0.0;
    let mut total_without = 0.0;
    for (window, total) in [(scale.profile_batches(), &mut total_with), (1, &mut total_without)] {
        let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 88);
        config.mode = Mode::Timing;
        let strategy = Strategy::Aergia {
            similarity_factor: 1.0,
            profile_batches: window,
            op_variant: Default::default(),
        };
        *total = run(config, strategy).total_time().as_secs_f64();
    }
    let protocol_overhead = 100.0 * (total_with - total_without).abs() / total_without;
    println!("protocol-level overhead (window vs minimal): {protocol_overhead:.3}%");

    // (ii) Instrumentation overhead: phase timers around real batches.
    let (train, _) = aergia_data::DataConfig {
        spec: DatasetSpec::FmnistLike,
        train_size: 64,
        test_size: 1,
        seed: 3,
    }
    .generate_pair();
    let mut model = ModelArch::FmnistCnn.build(4);
    let mut opt = Sgd::new(SgdConfig::default());
    let batches = scale.scaled(12, 4);
    let mut measured = PhaseCost::zero();
    let wall = std::time::Instant::now();
    for b in 0..batches {
        let idx: Vec<usize> = (0..8).map(|i| (b * 8 + i) % train.len()).collect();
        let (x, y) = train.batch(&idx);
        measured += model.train_batch(&x, &y, &mut opt).expect("batch").seconds;
    }
    let wall = wall.elapsed().as_secs_f64();
    // The timers' cost is the wall time not attributed to any phase (plus
    // batching); an upper bound on instrumentation overhead.
    let unattributed = 100.0 * (wall - measured.total()).max(0.0) / wall;
    println!("instrumentation overhead upper bound:        {unattributed:.3}%");

    println!();
    println!("expected (paper): well under 1% of training time.");
}
