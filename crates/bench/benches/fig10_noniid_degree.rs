//! Figure 10: accuracy over time for different degrees of non-IIDness.
//!
//! Aergia trained for a fixed number of rounds with clients owning 10
//! (IID-like), 5, 3 or 2 of the 10 classes. Completion times barely move;
//! accuracy drops as the data gets more skewed.

use aergia::strategy::Strategy;
use aergia_bench::{base_config, f3, header, run_parallel, secs, Scale};
use aergia_data::partition::Scheme;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn main() {
    let scale = Scale::from_env();
    header("Figure 10", "test accuracy over time per degree of non-IIDness (Aergia)");

    let degrees: [(&str, Scheme); 4] = [
        ("IID", Scheme::Iid),
        ("non-IID(10)", Scheme::NonIid { classes_per_client: 10 }),
        ("non-IID(5)", Scheme::NonIid { classes_per_client: 5 }),
        ("non-IID(2)", Scheme::NonIid { classes_per_client: 2 }),
    ];

    let strategy = Strategy::Aergia {
        similarity_factor: 1.0,
        profile_batches: scale.profile_batches(),
        op_variant: Default::default(),
    };
    let jobs: Vec<_> = degrees
        .iter()
        .map(|&(_, scheme)| {
            let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 77);
            config.partition = scheme;
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    for ((name, _), result) in degrees.iter().zip(&results) {
        let curve = result.accuracy_over_time();
        print!("{name:<14}");
        for (t, acc) in curve.iter() {
            print!("  ({:>7}, {})", secs(*t), f3(*acc));
        }
        println!();
    }

    println!();
    println!("{:<14}{:>16}{:>14}", "degree", "final accuracy", "total time");
    for ((name, _), result) in degrees.iter().zip(&results) {
        println!(
            "{:<14}{:>16}{:>14}",
            name,
            f3(result.final_accuracy),
            secs(result.total_time().as_secs_f64())
        );
    }

    println!();
    println!(
        "expected shape (paper): completion times differ little across degrees, while\n\
         accuracy falls as clients own fewer classes (IID ≥ non-IID(10) > (5) > (2))."
    );
}
