//! Figures 9(a)/9(b): impact of the similarity factor `f`.
//!
//! Aergia on non-IID FMNIST with `f ∈ {1, 0.75, 0.5, 0.25, 0}`. With
//! `f = 0` scheduling is purely speed-driven (shortest rounds, lower
//! accuracy); raising `f` restricts offloading to data-compatible pairs
//! (slightly longer rounds, better accuracy).

use aergia::strategy::Strategy;
use aergia_bench::{base_config, f3, header, run_parallel, secs, Scale};
use aergia_data::partition::Scheme;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn main() {
    let scale = Scale::from_env();
    header("Figures 9(a)/9(b)", "similarity factor f vs accuracy and mean round time");

    let factors = [1.0, 0.75, 0.5, 0.25, 0.0];
    let jobs: Vec<_> = factors
        .iter()
        .map(|&f| {
            let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 66);
            config.partition = Scheme::NonIid { classes_per_client: 2 };
            // The paper's §5.3 setting selects 3 of the cluster per round.
            config.clients_per_round = 3.min(config.num_clients);
            config.rounds = (scale.rounds() * 2).max(6);
            let strategy = Strategy::Aergia {
                similarity_factor: f,
                profile_batches: scale.profile_batches(),
                op_variant: Default::default(),
            };
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!("{:<12}{:>14}{:>16}{:>12}", "factor f", "accuracy", "mean round", "offloads");
    for (&f, result) in factors.iter().zip(&results) {
        println!(
            "{:<12}{:>14}{:>16}{:>12}",
            f,
            f3(result.final_accuracy),
            secs(result.mean_round_secs()),
            result.total_offloads()
        );
    }

    println!();
    println!(
        "expected shape (paper, Fig. 9): f = 0 gives the shortest average rounds but\n\
         hurts accuracy; positive f trades a little round time for higher accuracy."
    );
}
