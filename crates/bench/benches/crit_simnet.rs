//! Micro-benchmarks of the discrete-event substrate: event-queue
//! throughput and an end-to-end timing-mode FL round.

use aergia::config::Mode;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_simnet::{EventQueue, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simnet/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros(i.wrapping_mul(2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    });
}

fn bench_timing_round(c: &mut Criterion) {
    c.bench_function("engine/timing_mode_full_run_8_clients", |b| {
        b.iter(|| {
            let mut config =
                base_config(Scale::Smoke, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 5);
            config.mode = Mode::Timing;
            config.num_clients = 8;
            config.clients_per_round = 8;
            config.speeds = aergia_simnet::cluster::uniform_speeds(8, 0.1, 1.0, 5);
            config.rounds = 5;
            aergia::Engine::new(config, Strategy::aergia_default())
                .expect("config")
                .run()
                .expect("run")
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_timing_round);
criterion_main!(benches);
