//! Figure 6: accuracy and training time under IID data.
//!
//! Three datasets × five algorithms, heterogeneous clients (speeds drawn
//! uniformly from [0.1, 1.0]), IID shards. Reports final accuracy
//! (Fig. 6a–c) and the total time for the configured number of rounds
//! (Fig. 6d–f).

use aergia_bench::{algorithms, base_config, eval_pairs, f3, header, run_parallel, secs, Scale};

fn main() {
    let scale = Scale::from_env();
    header("Figure 6", "IID: final accuracy (a–c) and total training time (d–f)");

    for (spec, arch) in eval_pairs() {
        let algos = algorithms(scale);
        let jobs: Vec<_> = algos.iter().map(|&s| (base_config(scale, spec, arch, 33), s)).collect();
        let results = run_parallel(jobs);

        println!();
        println!("dataset: {spec}");
        println!(
            "{:<18}{:>12}{:>14}{:>14}{:>12}{:>12}",
            "algorithm", "accuracy", "total time", "mean round", "offloads", "pretrain"
        );
        for (strategy, result) in algos.iter().zip(&results) {
            println!(
                "{:<18}{:>12}{:>14}{:>14}{:>12}{:>12}",
                strategy.name(),
                f3(result.final_accuracy),
                secs(result.total_time().as_secs_f64()),
                secs(result.mean_round_secs()),
                result.total_offloads(),
                secs(result.pretraining.as_secs_f64()),
            );
        }
    }

    println!();
    println!(
        "expected shape (paper): accuracies are comparable across algorithms under IID;\n\
         Aergia finishes the same number of rounds in ~27% less time than FedAvg and\n\
         ~45% less than TiFL."
    );
}
