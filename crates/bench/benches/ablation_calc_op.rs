//! Ablation: the printed Algorithm 2 recurrence vs the unimodal form.
//!
//! `DESIGN.md` §4 documents that the recurrence as printed in the paper is
//! monotone in `d` for realistic inputs (so the early-exit never fires and
//! the offload point saturates), while the unimodal correction balances
//! the sender's saved work against the receiver's added work. This bench
//! compares the two on the same heterogeneous cluster.

use aergia::config::Mode;
use aergia::scheduler::OpVariant;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, header, run_parallel, secs, Scale};
use aergia_data::partition::Scheme;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn main() {
    let scale = Scale::from_env();
    header("Ablation (calc_op)", "printed Algorithm 2 vs unimodal correction");

    let variants = [("unimodal", OpVariant::Unimodal), ("printed", OpVariant::Printed)];
    let jobs: Vec<_> = variants
        .iter()
        .map(|&(_, v)| {
            let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 99);
            config.mode = Mode::Timing;
            config.partition = Scheme::paper_non_iid();
            config.rounds = (scale.rounds() * 2).max(6);
            let strategy = Strategy::Aergia {
                similarity_factor: 1.0,
                profile_batches: scale.profile_batches(),
                op_variant: v,
            };
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!("{:<12}{:>16}{:>16}{:>12}", "variant", "total time", "mean round", "offloads");
    for ((name, _), result) in variants.iter().zip(&results) {
        println!(
            "{:<12}{:>16}{:>16}{:>12}",
            name,
            secs(result.total_time().as_secs_f64()),
            secs(result.mean_round_secs()),
            result.total_offloads()
        );
    }

    println!();
    println!(
        "expected: the printed variant offloads the maximum d batches (receiver\n\
         saturation), yielding equal-or-longer rounds than the unimodal optimum."
    );
}
