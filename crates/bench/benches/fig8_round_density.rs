//! Figure 8: density of per-round durations (FMNIST).
//!
//! Runs every algorithm for many rounds on the paper's 24-client FMNIST
//! setting (3 selected per round) in timing mode and prints a shared-bin
//! histogram of round durations. Aergia's mass should sit left of every
//! baseline's.

use aergia::config::Mode;
use aergia::metrics::DurationHistogram;
use aergia_bench::{algorithms, base_config, header, run_parallel, Scale};
use aergia_data::partition::Scheme;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn main() {
    let scale = Scale::from_env();
    header("Figure 8", "density of round durations, FMNIST (timing mode)");

    let clients = scale.clients().max(8);
    let algos = algorithms(scale);
    let jobs: Vec<_> = algos
        .iter()
        .map(|&s| {
            let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 55);
            config.mode = Mode::Timing;
            config.num_clients = clients;
            config.clients_per_round = 3.min(clients);
            config.partition = Scheme::paper_non_iid();
            config.rounds = (scale.rounds() * 5).max(30);
            config.speeds = aergia_simnet::cluster::uniform_speeds(clients, 0.1, 1.0, 0xf18);
            (config, s)
        })
        .collect();
    let results = run_parallel(jobs);

    // Shared bins across algorithms so the densities are comparable.
    let all: Vec<f64> = results.iter().flat_map(|r| r.round_durations()).collect();
    let bins = 10usize;
    let shared = DurationHistogram::from_samples(&all, bins);

    print!("{:<18}", "round secs →");
    for b in 0..bins {
        print!("{:>8.1}", shared.center(b));
    }
    println!("{:>10}", "mean");

    for (strategy, result) in algos.iter().zip(&results) {
        let durations = result.round_durations();
        let mut counts = vec![0usize; bins];
        for &d in &durations {
            let mut idx = ((d - shared.start) / shared.width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        let total: usize = counts.len().max(1);
        let _ = total;
        print!("{:<18}", strategy.name());
        for &c in &counts {
            let dens = c as f64 / (durations.len() as f64 * shared.width);
            print!("{:>8.3}", dens);
        }
        println!("{:>10.2}", result.mean_round_secs());
    }

    println!();
    println!(
        "expected shape (paper): Aergia's distribution is shifted left (shorter\n\
         rounds) relative to FedAvg/FedProx/FedNova/TiFL."
    );
}
