//! Ablation: the profiling-window length (§4.2 / §5.4 "Profiler").
//!
//! A longer window yields better performance indicators but delays the
//! scheduling decision (less of the round left to optimize). The paper
//! settles on 100 of 1600 batches (a 1/16 ratio).

use aergia::config::Mode;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, header, run_parallel, secs, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

fn main() {
    let scale = Scale::from_env();
    header("Ablation (profiling window)", "offload benefit vs window length");

    let updates = scale.local_updates().max(16);
    let windows: Vec<u32> = vec![1, updates / 16, updates / 8, updates / 4, updates / 2]
        .into_iter()
        .map(|w| w.max(1))
        .collect();

    let jobs: Vec<_> = windows
        .iter()
        .map(|&w| {
            let mut config = base_config(scale, DatasetSpec::FmnistLike, ModelArch::FmnistCnn, 111);
            config.mode = Mode::Timing;
            config.local_updates = updates;
            config.rounds = (scale.rounds() * 2).max(6);
            let strategy = Strategy::Aergia {
                similarity_factor: 0.0,
                profile_batches: w,
                op_variant: Default::default(),
            };
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!(
        "{:<16}{:>16}{:>16}{:>12}",
        "window (batches)", "total time", "mean round", "offloads"
    );
    for (&w, result) in windows.iter().zip(&results) {
        println!(
            "{:<16}{:>16}{:>16}{:>12}",
            format!("{w} / {updates}"),
            secs(result.total_time().as_secs_f64()),
            secs(result.mean_round_secs()),
            result.total_offloads()
        );
    }

    println!();
    println!(
        "expected: very long windows leave little room to offload (rounds lengthen);\n\
         the paper's ~1/16 ratio sits near the flat minimum."
    );
}
