//! Micro-benchmarks of the tensor/NN kernels the whole evaluation rests
//! on: matmul, a GEMM size sweep in GFLOP/s (packed microkernel vs the
//! previous blocked generation), convolution forward/backward, and a full
//! 4-phase batch.

use aergia_nn::models::ModelArch;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_tensor::gemm::{PackedA, PackedB};
use aergia_tensor::{init, ops, Tensor};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut a = Tensor::zeros(&[128, 256]);
    let mut b = Tensor::zeros(&[256, 64]);
    init::normal(&mut a, &mut rng, 0.0, 1.0);
    init::normal(&mut b, &mut rng, 0.0, 1.0);
    c.bench_function("tensor/matmul_128x256x64", |bench| {
        bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).expect("matmul"));
    });
}

/// GEMM size sweep at CNN-typical im2col shapes (`m` = batch × output
/// pixels, `k` = in_channels × kernel², `n` = out_channels), reporting
/// GFLOP/s (the `Gelem/s` column, with elements = 2·m·k·n FLOPs).
///
/// Per shape and form:
/// * `blocked` — the previous loop-tiled scalar generation
///   (`ops::matmul_blocked_into`), the sweep's baseline;
/// * `packed` — the register-blocked microkernel over a *cached* operand
///   pack laid out for the autotuner's pick at that shape, i.e. the
///   steady-state hot path of a cached weight matrix;
/// * `packed_<isa>_<mr>x<nr>` — the same multiply pinned to each kernel
///   variant this machine can dispatch to (the scalar 4×8 entry is the
///   portable baseline every SIMD tile is bit-compared against);
/// * `packed_cold` (matmul only) — pack + multiply per iteration, the
///   worst case a per-batch operand pays.
fn bench_gemm_sweep(c: &mut Criterion) {
    use aergia_tensor::gemm::{active_isa, tuned_variant, GemmOp, KernelVariant};
    // (m, k, n) spanning the im2col band: m ≈ 10³–10⁴, k ≈ 10²–10³.
    const SHAPES: &[(usize, usize, usize)] = &[(1024, 128, 32), (3136, 576, 64), (4096, 800, 128)];
    let mut group = c.benchmark_group("tensor/gemm");
    eprintln!("tensor/gemm: active ISA tier = {}", active_isa().label());
    for &(m, k, n) in SHAPES {
        let mut rng = StdRng::seed_from_u64(42);
        let mut a = Tensor::zeros(&[m, k]);
        let mut b = Tensor::zeros(&[k, n]);
        let mut bt = Tensor::zeros(&[n, k]);
        let mut at = Tensor::zeros(&[k, m]);
        init::normal(&mut a, &mut rng, 0.0, 1.0);
        init::normal(&mut b, &mut rng, 0.0, 1.0);
        init::normal(&mut bt, &mut rng, 0.0, 1.0);
        init::normal(&mut at, &mut rng, 0.0, 1.0);
        let mut out = Tensor::zeros(&[m, n]);
        let flops = 2 * m * k * n;
        group.throughput(Throughput::Elements(flops as u64));

        group.bench_function(format!("m{m}_k{k}_n{n}/blocked"), |bench| {
            bench.iter(|| ops::matmul_blocked_into(black_box(&a), black_box(&b), &mut out));
        });
        let mut pb = PackedB::new();
        pb.pack_with(&b, tuned_variant(GemmOp::Nn, m, k, n)).expect("pack");
        group.bench_function(format!("m{m}_k{k}_n{n}/packed"), |bench| {
            bench.iter(|| ops::matmul_packed_into(black_box(&a), black_box(&pb), &mut out));
        });
        // Every dispatchable variant at this shape, so a per-tile
        // regression (or a wrong autotuner pick) shows up by name.
        for &variant in KernelVariant::candidates(active_isa()) {
            let label = format!("{}_{}x{}", variant.isa.label(), variant.mr, variant.nr);
            let mut pbv = PackedB::new();
            pbv.pack_with(&b, variant).expect("pack");
            group.bench_function(format!("m{m}_k{k}_n{n}/packed_{label}"), |bench| {
                bench.iter(|| ops::matmul_packed_into(black_box(&a), black_box(&pbv), &mut out));
            });
        }
        group.bench_function(format!("m{m}_k{k}_n{n}/packed_cold"), |bench| {
            let mut cold = PackedB::new();
            bench.iter(|| {
                cold.pack(black_box(&b)).expect("pack");
                ops::matmul_packed_into(black_box(&a), black_box(&cold), &mut out)
            });
        });

        // The backward-pass forms at the same shape: nt (forward/input
        // gradients, B = weight, cached pack) and tn (weight gradients,
        // both operands per-batch, cold packs).
        let mut pbt = PackedB::new();
        pbt.pack_transposed_with(&bt, tuned_variant(GemmOp::Nt, m, k, n)).expect("pack");
        group.bench_function(format!("m{m}_k{k}_n{n}/nt_blocked"), |bench| {
            bench.iter(|| ops::matmul_nt_blocked_into(black_box(&a), black_box(&bt), &mut out));
        });
        group.bench_function(format!("m{m}_k{k}_n{n}/nt_packed"), |bench| {
            bench.iter(|| ops::matmul_nt_packed_into(black_box(&a), black_box(&pbt), &mut out));
        });

        let mut out_tn = Tensor::zeros(&[m, n]);
        group.bench_function(format!("m{m}_k{k}_n{n}/tn_blocked"), |bench| {
            bench.iter(|| ops::matmul_tn_blocked_into(black_box(&at), black_box(&b), &mut out_tn));
        });
        group.bench_function(format!("m{m}_k{k}_n{n}/tn_packed_cold"), |bench| {
            let tn = tuned_variant(GemmOp::Tn, m, k, n);
            let mut pa = PackedA::new();
            let mut pbc = PackedB::new();
            bench.iter(|| {
                pa.pack_transposed_with(black_box(&at), tn).expect("pack");
                pbc.pack_with(black_box(&b), tn).expect("pack");
                ops::matmul_tn_packed_into(&pa, &pbc, &mut out_tn)
            });
        });
    }
    group.finish();
}

fn bench_conv_phases(c: &mut Criterion) {
    let mut model = ModelArch::MnistCnn.build(1);
    let mut opt = Sgd::new(SgdConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    let mut x = Tensor::zeros(&[8, 1, 28, 28]);
    init::normal(&mut x, &mut rng, 0.0, 1.0);
    let y: Vec<usize> = (0..8).map(|i| i % 10).collect();
    c.bench_function("nn/mnist_cnn_full_batch8", |bench| {
        bench.iter(|| model.train_batch(black_box(&x), black_box(&y), &mut opt).expect("batch"));
    });

    let mut frozen = ModelArch::MnistCnn.build(1);
    frozen.freeze_features();
    c.bench_function("nn/mnist_cnn_frozen_batch8", |bench| {
        bench.iter(|| frozen.train_batch(black_box(&x), black_box(&y), &mut opt).expect("batch"));
    });
}

criterion_group!(benches, bench_matmul, bench_gemm_sweep, bench_conv_phases);
criterion_main!(benches);
