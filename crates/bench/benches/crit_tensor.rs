//! Micro-benchmarks of the tensor/NN kernels the whole evaluation rests
//! on: matmul, convolution forward/backward, and a full 4-phase batch.

use aergia_nn::models::ModelArch;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_tensor::{init, ops, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut a = Tensor::zeros(&[128, 256]);
    let mut b = Tensor::zeros(&[256, 64]);
    init::normal(&mut a, &mut rng, 0.0, 1.0);
    init::normal(&mut b, &mut rng, 0.0, 1.0);
    c.bench_function("tensor/matmul_128x256x64", |bench| {
        bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).expect("matmul"));
    });
}

fn bench_conv_phases(c: &mut Criterion) {
    let mut model = ModelArch::MnistCnn.build(1);
    let mut opt = Sgd::new(SgdConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    let mut x = Tensor::zeros(&[8, 1, 28, 28]);
    init::normal(&mut x, &mut rng, 0.0, 1.0);
    let y: Vec<usize> = (0..8).map(|i| i % 10).collect();
    c.bench_function("nn/mnist_cnn_full_batch8", |bench| {
        bench.iter(|| model.train_batch(black_box(&x), black_box(&y), &mut opt).expect("batch"));
    });

    let mut frozen = ModelArch::MnistCnn.build(1);
    frozen.freeze_features();
    c.bench_function("nn/mnist_cnn_frozen_batch8", |bench| {
        bench.iter(|| frozen.train_batch(black_box(&x), black_box(&y), &mut opt).expect("batch"));
    });
}

criterion_group!(benches, bench_matmul, bench_conv_phases);
criterion_main!(benches);
