//! Micro-benchmarks of the privacy path: sealing histograms and computing
//! the EMD similarity matrix inside the enclave.

use aergia_data::emd;
use aergia_enclave::{establish_session, SimilarityEnclave};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn histograms(clients: usize, classes: usize) -> Vec<Vec<u64>> {
    (0..clients).map(|c| (0..classes).map(|k| ((c * 31 + k * 17) % 97) as u64).collect()).collect()
}

fn bench_similarity_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd/similarity_matrix");
    for &n in &[24usize, 100] {
        let hists = histograms(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| emd::similarity_matrix(black_box(&hists)));
        });
    }
    group.finish();
}

fn bench_enclave_round_trip(c: &mut Criterion) {
    c.bench_function("enclave/attest_seal_submit_24_clients", |b| {
        b.iter(|| {
            let mut enclave = SimilarityEnclave::new(10, 7);
            for (client, hist) in histograms(24, 10).into_iter().enumerate() {
                let mut session =
                    establish_session(&mut enclave, client as u32, 99).expect("attest");
                enclave.submit(client as u32, session.seal_histogram(&hist)).expect("submit");
            }
            enclave.compute_similarity_matrix().expect("matrix")
        });
    });
}

criterion_group!(benches, bench_similarity_matrix, bench_enclave_round_trip);
criterion_main!(benches);
