//! Table 1: qualitative comparison of FL solutions for heterogeneous
//! settings, generated from the strategies' self-reported metadata.

use aergia::strategy::Strategy;
use aergia_bench::header;

fn main() {
    header("Table 1", "FL solutions for heterogeneous settings");

    println!(
        "{:<14}{:>22}{:>26}{:>26}",
        "", "data heterogeneity", "resource heterogeneity", "minimizes training time"
    );
    for strategy in [
        Strategy::FedAvg,
        Strategy::FedProx { mu: 0.05 },
        Strategy::FedNova,
        Strategy::tifl_default(),
        Strategy::aergia_default(),
    ] {
        let row = strategy.table1_row();
        println!(
            "{:<14}{:>22}{:>26}{:>26}",
            row.name,
            row.data_heterogeneity.to_string(),
            row.resource_heterogeneity.to_string(),
            if row.minimizes_training_time { "yes" } else { "no" }
        );
    }

    println!();
    println!(
        "expected content (paper Table 1): FedAvg -/-/no, FedProx +/-/no, FedNova\n\
         +/-/no, TiFL +/+/yes, Aergia ++/++/yes."
    );
}
