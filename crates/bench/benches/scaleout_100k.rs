//! Million-client scale-out: cohort-sampled client state under two-tier
//! aggregation at population scale.
//!
//! Simulates a large client population in timing mode with only the
//! selected participants materialised: the unselected crowd exists as
//! compact per-client timing state (speeds, shard sizes, cohort ids —
//! tens of bytes each) while batcher/workspace state lives in the LRU
//! pool capped at the participation count. The printout shows the knee
//! the PR exists for: resident client bytes follow `trained`, not
//! `simulated`.
//!
//! At `AERGIA_SCALE=smoke` the harness runs the 100k-simulated /
//! 1k-trained point (this is the wall-time the bench-regression gate
//! tracks); at default and paper scale it adds the 1M / 10k point. The
//! `scale-smoke` CI job runs both under an RSS ceiling: set
//! `AERGIA_RSS_LIMIT_MB` and the harness exits non-zero if the process
//! peak resident set exceeds it.

use std::time::Instant;

use aergia::engine::Engine;
use aergia::prelude::TopologyBuilder;
use aergia::strategy::Strategy;
use aergia_bench::{header, scaleout_config, Scale};

/// Peak resident set size of this process in MiB (Linux `VmHWM`).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Edge aggregators in the two-tier layout.
const NUM_EDGES: usize = 8;

fn main() {
    let scale = Scale::from_env();
    header("Scale-out", "cohort-sampled population, two-tier aggregation (timing mode)");

    let points: &[(usize, usize, u32)] = match scale {
        Scale::Smoke => &[(100_000, 1_000, 3)],
        _ => &[(100_000, 1_000, 3), (1_000_000, 10_000, 2)],
    };

    println!(
        "{:>10} {:>8} {:>7} {:>8} {:>10} {:>12} {:>9} {:>9}",
        "simulated", "trained", "rounds", "edges", "secs", "res. bytes", "res. cli", "rebuilds"
    );
    for &(simulated, trained, rounds) in points {
        let started = Instant::now();
        let config = scaleout_config(simulated, trained, rounds, 0x5ca1e);
        let topology = TopologyBuilder::new().edge_cohorts(NUM_EDGES, 0x5ca1e);
        let mut engine =
            Engine::with_topology(config, Strategy::FedAvg, topology).expect("valid config");
        let result = engine.run().expect("scale-out run");
        let secs = started.elapsed().as_secs_f64();

        let resident_bytes = result.rounds.iter().map(|r| r.pool.resident_bytes).max().unwrap_or(0);
        let resident_clients =
            result.rounds.iter().map(|r| r.pool.resident_clients).max().unwrap_or(0);
        let rebuilds: u32 = result.rounds.iter().map(|r| r.pool.rebuilds).sum();
        assert!(
            resident_clients as usize <= trained,
            "pool must stay within the participation cap ({resident_clients} > {trained})"
        );
        for r in &result.rounds {
            assert_eq!(r.participants.len(), trained, "every round trains the full selection");
        }
        println!(
            "{simulated:>10} {trained:>8} {rounds:>7} {NUM_EDGES:>8} {secs:>10.2} \
             {resident_bytes:>12} {resident_clients:>9} {rebuilds:>9}"
        );
    }

    match peak_rss_mib() {
        Some(peak) => {
            println!();
            println!("peak RSS: {peak:.0} MiB");
            if let Some(limit) =
                std::env::var("AERGIA_RSS_LIMIT_MB").ok().and_then(|v| v.parse::<f64>().ok())
            {
                if peak > limit {
                    eprintln!(
                        "scaleout: peak RSS {peak:.0} MiB exceeds the {limit:.0} MiB ceiling"
                    );
                    std::process::exit(1);
                }
                println!("within the {limit:.0} MiB ceiling ✓");
            }
        }
        None => println!("\npeak RSS: unavailable on this platform"),
    }

    println!();
    println!(
        "expected shape: resident client bytes track the participation cap\n\
         (trained), not the simulated population — the 10x population step\n\
         moves wall-time, not resident client state."
    );
}
