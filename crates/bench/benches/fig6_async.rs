//! Figure 6 (async variant): buffered-asynchronous aggregation vs the
//! synchronous baseline.
//!
//! Same heterogeneous IID cluster as `fig6_iid`, MNIST-like only, under
//! Aergia's scheduler. The asynchronous rows fold updates in
//! virtual-clock arrival order with the FedLGA staleness discount
//! (`docs/scenarios.md`), so slow clients contribute less instead of
//! gating the round — accuracy degrades gracefully as the mixing rate
//! drops while the round structure (and therefore the clock) stays
//! identical.

use aergia_bench::{base_config, f3, header, run_parallel, secs, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

use aergia::prelude::*;

fn main() {
    let scale = Scale::from_env();
    header("Figure 6 (async)", "buffered-async aggregation vs the synchronous fold");

    let rows: Vec<(&str, ScenarioConfig)> = vec![
        ("sync (baseline)", ScenarioConfig::default()),
        (
            "async mixing=1.0",
            ScenarioConfig {
                aggregation: AggregationMode::BufferedAsync {
                    max_staleness: SimDuration::from_secs_f64(1e6),
                    mixing: 1.0,
                },
                ..ScenarioConfig::default()
            },
        ),
        (
            "async mixing=0.5",
            ScenarioConfig {
                aggregation: AggregationMode::BufferedAsync {
                    max_staleness: SimDuration::from_secs_f64(1e6),
                    mixing: 0.5,
                },
                ..ScenarioConfig::default()
            },
        ),
    ];

    let strategy = Strategy::aergia_default();
    let jobs: Vec<_> = rows
        .iter()
        .map(|(_, scenario)| {
            let mut config = base_config(scale, DatasetSpec::MnistLike, ModelArch::MnistCnn, 33);
            config.scenario = scenario.clone();
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!();
    println!(
        "{:<18}{:>12}{:>14}{:>14}{:>12}",
        "aggregation", "accuracy", "total time", "mean round", "offloads"
    );
    for ((name, _), result) in rows.iter().zip(&results) {
        println!(
            "{:<18}{:>12}{:>14}{:>14}{:>12}",
            name,
            f3(result.final_accuracy),
            secs(result.total_time().as_secs_f64()),
            secs(result.mean_round_secs()),
            result.total_offloads(),
        );
    }

    println!();
    println!(
        "expected shape: the sequential fold trails the synchronous mean — at mixing\n\
         1.0 each arrival *replaces* the global model, so the slowest (last) client\n\
         dominates; a moderate mixing rate smooths the bias. Round times are\n\
         identical because the scenario engine changes the fold, never the event\n\
         trace."
    );
}
