//! Figure 4: share of a local update spent in each training phase.
//!
//! Profiles the four phases (ff, fc, bc, bf) on a single client for the
//! paper's five dataset/network pairings, both with real wall-clock
//! measurement and with the analytic FLOP model the simulator uses. The
//! paper's headline: the backward feature pass dominates (52–75%).

use aergia_bench::{header, Scale};
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_nn::optim::{Sgd, SgdConfig};
use aergia_nn::profile::{Phase, PhaseCost};

fn spec_for(arch: ModelArch) -> DatasetSpec {
    match arch {
        ModelArch::MnistCnn => DatasetSpec::MnistLike,
        ModelArch::FmnistCnn => DatasetSpec::FmnistLike,
        ModelArch::Cifar10Cnn | ModelArch::Cifar10ResNet => DatasetSpec::Cifar10Like,
        _ => DatasetSpec::Cifar100Like,
    }
}

fn shares(cost: PhaseCost) -> [f64; 4] {
    [
        100.0 * cost.share(Phase::ForwardFeatures),
        100.0 * cost.share(Phase::ForwardClassifier),
        100.0 * cost.share(Phase::BackwardClassifier),
        100.0 * cost.share(Phase::BackwardFeatures),
    ]
}

fn main() {
    let scale = Scale::from_env();
    header("Figure 4", "percentage of a local update spent per phase (ff/fc/bc/bf)");

    let batches = scale.scaled(3, 1);
    println!(
        "{:<20}{:>8}{:>8}{:>8}{:>8}   {:>8}{:>8}{:>8}{:>8}",
        "network", "ff%", "fc%", "bc%", "bf%", "ff%", "fc%", "bc%", "bf%"
    );
    println!("{:<20}{:^32}   {:^32}", "", "measured wall-clock", "FLOP cost model");

    for arch in ModelArch::ALL {
        let (train, _) =
            DataConfig { spec: spec_for(arch), train_size: 8 * batches, test_size: 1, seed: 5 }
                .generate_pair();
        let mut model = arch.build(9);
        let mut opt = Sgd::new(SgdConfig::default());
        let mut measured = PhaseCost::zero();
        for b in 0..batches {
            let idx: Vec<usize> = (b * 8..(b + 1) * 8).collect();
            let (x, y) = train.batch(&idx);
            let stats = model.train_batch(&x, &y, &mut opt).expect("profiling batch");
            measured += stats.seconds;
        }
        let m = shares(measured);
        let f = shares(model.phase_flops(8));
        println!(
            "{:<20}{:>8.1}{:>8.1}{:>8.1}{:>8.1}   {:>8.1}{:>8.1}{:>8.1}{:>8.1}",
            arch.name(),
            m[0],
            m[1],
            m[2],
            m[3],
            f[0],
            f[1],
            f[2],
            f[3],
        );
    }

    println!();
    println!(
        "expected shape (paper): bf dominates every network (52–75%), fc and bc are\n\
         small, ff takes most of the remainder."
    );
}
