//! §4.3 claim: the LPT-style scheduler "scales linearly with the number of
//! clients, and therefore does not significantly slow down the federator".
//! Criterion sweep over cluster sizes.

use aergia::scheduler::{calc_op, schedule, ClientPerf, OpVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn perfs(n: usize) -> Vec<ClientPerf> {
    (0..n)
        .map(|id| {
            let speed = 0.1 + 0.9 * (id as f64 * 0.6180339887).fract();
            let full = 0.05 / speed;
            ClientPerf {
                id,
                t123: full * 0.4,
                t4: full * 0.6,
                feature_only: full * 0.8,
                remaining: 1500,
            }
        })
        .collect()
}

fn identity_similarity(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| (0..n).map(|j| if i == j { 0.0 } else { 0.5 }).collect()).collect()
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/schedule");
    for &n in &[10usize, 100, 1000] {
        let p = perfs(n);
        let s = identity_similarity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| schedule(black_box(&p), black_box(&s), 1.0, OpVariant::Unimodal));
        });
    }
    group.finish();
}

fn bench_calc_op(c: &mut Criterion) {
    c.bench_function("scheduler/calc_op_1600_updates", |b| {
        b.iter(|| calc_op(black_box(0.5), black_box(0.05), black_box(0.04), 1600, 1600));
    });
}

criterion_group!(benches, bench_schedule, bench_calc_op);
criterion_main!(benches);
