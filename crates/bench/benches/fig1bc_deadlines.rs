//! Figures 1(b) and 1(c): the deadline trade-off that motivates Aergia.
//!
//! Runs deadline-FedAvg on a heterogeneous non-IID cluster with
//! progressively tighter per-round deadlines (∞ down to 10% of the
//! untruncated round time). Figure 1(b) is the falling total training
//! time; Figure 1(c) is the falling non-IID accuracy as stragglers'
//! unique data gets dropped.

use aergia::config::Mode;
use aergia::strategy::Strategy;
use aergia_bench::{base_config, f3, header, run, run_parallel, secs, Scale};
use aergia_data::partition::Scheme;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figures 1(b)/1(c)",
        "total training time and non-IID accuracy under per-round deadlines",
    );

    let make = |seed| {
        let mut c = base_config(scale, DatasetSpec::MnistLike, ModelArch::MnistCnn, seed);
        c.partition = Scheme::NonIid { classes_per_client: 3 };
        c
    };

    // Calibrate: the untruncated round time of this cluster (timing mode).
    let mut probe = make(21);
    probe.mode = Mode::Timing;
    let base = run(probe, Strategy::FedAvg);
    let round_secs = base.rounds.iter().map(|r| r.duration.as_secs_f64()).fold(0.0, f64::max);

    // Paper: deadlines ∞, 70, 50, 30, 10 s against rounds of up to ~70 s;
    // we apply the same fractions of the calibrated round time.
    let fractions = [f64::INFINITY, 0.7, 0.5, 0.3, 0.1];

    let jobs: Vec<_> = fractions
        .iter()
        .map(|&frac| {
            let strategy = if frac.is_infinite() {
                Strategy::FedAvg
            } else {
                Strategy::DeadlineFedAvg { deadline: SimDuration::from_secs_f64(round_secs * frac) }
            };
            (make(21), strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!(
        "{:<12}{:>16}{:>16}{:>14}{:>12}",
        "deadline", "total time", "accuracy", "dropped", "rounds"
    );
    for (&frac, result) in fractions.iter().zip(&results) {
        let label = if frac.is_infinite() { "inf".to_string() } else { secs(round_secs * frac) };
        println!(
            "{:<12}{:>16}{:>16}{:>14}{:>12}",
            label,
            secs(result.total_time().as_secs_f64()),
            f3(result.final_accuracy),
            result.total_dropped(),
            result.rounds.len()
        );
    }

    println!();
    println!(
        "expected shape (paper): total time falls monotonically with the deadline\n\
         (Fig. 1b) while accuracy degrades, sharply at the tightest deadlines (Fig. 1c)."
    );
}
