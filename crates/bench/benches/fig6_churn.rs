//! Figure 6 (churn variant): client churn and mid-round crashes under
//! both offload-recovery policies.
//!
//! Same heterogeneous IID cluster as `fig6_iid`, MNIST-like only, with
//! the seeded churn model (`docs/scenarios.md`) injecting leaves,
//! rejoins and mid-round crashes. `drop` abandons a crashed straggler's
//! remaining offloaded batches; `reschedule` re-signs them to the
//! fastest idle peer, trading an extra snapshot transfer for the
//! recovered computation.

use aergia_bench::{base_config, f3, header, run_parallel, secs, Scale};
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;

use aergia::prelude::*;

fn main() {
    let scale = Scale::from_env();
    header("Figure 6 (churn)", "join/leave/crash churn under both offload policies");

    let churn = |policy| ChurnConfig {
        leave_prob: 0.15,
        rejoin_prob: 0.7,
        crash_prob: 0.45,
        offload_policy: policy,
    };
    let rows: Vec<(&str, Option<ChurnConfig>)> = vec![
        ("stable (baseline)", None),
        ("churn, drop", Some(churn(OffloadPolicy::Drop))),
        ("churn, reschedule", Some(churn(OffloadPolicy::Reschedule))),
    ];

    let strategy = Strategy::aergia_default();
    let jobs: Vec<_> = rows
        .iter()
        .map(|&(_, churn)| {
            let mut config = base_config(scale, DatasetSpec::MnistLike, ModelArch::MnistCnn, 33);
            config.scenario.churn = churn;
            (config, strategy)
        })
        .collect();
    let results = run_parallel(jobs);

    println!();
    println!(
        "{:<20}{:>12}{:>14}{:>12}{:>12}",
        "cluster", "accuracy", "total time", "offloads", "crashed"
    );
    for ((name, _), result) in rows.iter().zip(&results) {
        let crashed: usize = result.rounds.iter().map(|r| r.dropped.len()).sum();
        println!(
            "{:<20}{:>12}{:>14}{:>12}{:>12}",
            name,
            f3(result.final_accuracy),
            secs(result.total_time().as_secs_f64()),
            result.total_offloads(),
            crashed,
        );
    }

    println!();
    println!(
        "expected shape: churn costs accuracy (lost updates) but never liveness —\n\
         rounds complete with the surviving replies; rescheduling recovers some of\n\
         the drop policy's abandoned offload batches."
    );
}
