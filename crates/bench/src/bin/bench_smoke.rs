//! Times every figure harness at `AERGIA_SCALE=smoke` and gates wall-time
//! regressions (plus the in-process `allocs_per_round`, `matmul_gflops`,
//! per-codec `bytes_per_round_*` and `resident_client_bytes` figures) —
//! the driver behind the `bench-regression` CI job.
//!
//! ```sh
//! cargo run --release -p aergia-bench --bin bench_smoke -- \
//!     --out BENCH_smoke.json \
//!     --baseline crates/bench/baselines/BENCH_smoke.json
//! ```
//!
//! The binary shells out to `cargo bench --bench <figure>` per harness
//! (after one untimed `cargo bench --no-run` so compilation never pollutes
//! a measurement), writes the wall-times as flat JSON, and exits non-zero
//! if any harness runs more than `--max-regression` (default 2.0) times
//! slower than its entry in the checked-in baseline. Refresh the baseline
//! by copying a green run's artifact over
//! `crates/bench/baselines/BENCH_smoke.json`.

use std::process::Command;
use std::time::Instant;

use aergia::engine::Engine;
use aergia::strategy::Strategy;
use aergia_bench::regression::{
    embed_telemetry, from_json, is_throughput, regressions, to_json, BenchReport,
};
use aergia_bench::{base_config, Scale};
use aergia_codec::CodecConfig;
use aergia_data::DatasetSpec;
use aergia_nn::models::ModelArch;
use aergia_runtime::alloc_count::CountingAllocator;
use aergia_tensor::gemm::{active_isa, tuned_variant, GemmOp, KernelVariant, PackedB};
use aergia_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every heap allocation in this process so the report can carry
/// `allocs_per_round` next to the wall-times (the allocation measurement
/// runs in-process, before any harness is shelled out).
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// The figure/table harnesses the gate tracks (criterion micro-benches are
/// excluded: their wall-time is dominated by criterion's sampling loop).
const HARNESSES: &[&str] = &[
    "fig1a_cpu_variance",
    "fig1bc_deadlines",
    "fig4_phase_profile",
    "fig6_iid",
    "fig6_async",
    "fig6_churn",
    "fig7_noniid",
    "fig8_round_density",
    "fig9_similarity_factor",
    "fig10_noniid_degree",
    "table1_feature_matrix",
    "scaleout_100k",
];

struct Options {
    out: Option<String>,
    baseline: Option<String>,
    max_regression: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { out: None, baseline: None, max_regression: 2.0 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--out" => options.out = Some(value("--out")?),
            "--baseline" => options.baseline = Some(value("--baseline")?),
            "--max-regression" => {
                options.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn cargo() -> Command {
    let mut cmd = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()));
    cmd.env("AERGIA_SCALE", "smoke");
    cmd
}

/// Steady-state heap allocations per real-mode Aergia round at smoke
/// scale: round 0 warms the per-client workspaces, the remaining rounds
/// are measured. Serial execution keeps the count free of thread-pool
/// bookkeeping; what remains is per-round work (snapshots, aggregation,
/// evaluation) — the batch loops themselves are allocation-free, so a
/// regression here means churn crept back into the hot path.
///
/// `parallelism = 1` serialises the engine's client fan-out, but the
/// *tensor* kernels size themselves from the global pool
/// (`AERGIA_THREADS`/`available_parallelism`), and every parallel tile
/// spawn heap-allocates a job — which would make the count scale with
/// the machine's core count. The caller therefore pins
/// `AERGIA_THREADS=1` around this measurement (before the pool's first
/// use) so the figure is machine-independent.
fn measure_allocs_per_round() -> f64 {
    let mut config = base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, 77);
    config.parallelism = 1;
    let rounds = config.rounds;
    assert!(rounds >= 2, "need a warm-up round plus at least one measured round");
    let mut engine = Engine::new(config, Strategy::aergia_default()).expect("valid smoke config");
    let mut progress = engine.start_progress();
    engine.step_round(&mut progress).expect("warm-up round");
    let before = ALLOC.allocations();
    for _ in 1..rounds {
        engine.step_round(&mut progress).expect("measured round");
    }
    (ALLOC.allocations() - before) as f64 / f64::from(rounds - 1)
}

/// Steady-state GEMM throughput (GFLOP/s) of the packed microkernel at a
/// CNN-typical im2col shape, against a cached weight pack laid out for
/// `variant` — the figure behind the `matmul_gflops` (autotuned dispatch
/// on this machine's ISA tier) and `matmul_scalar_gflops` (portable 4×8
/// baseline) gate entries. Measured serially (the caller pins
/// `AERGIA_THREADS=1`) so the number reflects per-core kernel quality,
/// not the host's core count.
fn measure_matmul_gflops(variant: KernelVariant) -> f64 {
    let (m, k, n) = (2048, 576, 64);
    let mut rng = StdRng::seed_from_u64(7);
    let mut a = Tensor::zeros(&[m, k]);
    let mut b = Tensor::zeros(&[k, n]);
    init::normal(&mut a, &mut rng, 0.0, 1.0);
    init::normal(&mut b, &mut rng, 0.0, 1.0);
    let mut pb = PackedB::new();
    pb.pack_with(&b, variant).expect("pack");
    let mut out = Tensor::default();
    // Warm the output buffer and caches, then time a fixed window.
    ops::matmul_packed_into(&a, &pb, &mut out).expect("matmul");
    let flops = 2.0 * (m * k * n) as f64;
    let started = Instant::now();
    let mut reps = 0u32;
    while started.elapsed().as_secs_f64() < 0.5 {
        ops::matmul_packed_into(&a, &pb, &mut out).expect("matmul");
        reps += 1;
    }
    flops * f64::from(reps) / started.elapsed().as_secs_f64() / 1e9
}

/// Simulated bytes-on-wire per round of the smoke Aergia experiment under
/// `codec`. Runs in timing mode — wire sizes are shape-deterministic, so
/// the figure is exact, fast and identical to a real-mode run — and gates
/// like a wall-time: growing the protocol's byte footprint 2x fails CI.
fn measure_bytes_per_round(codec: CodecConfig) -> f64 {
    let mut config = base_config(Scale::Smoke, DatasetSpec::MnistLike, ModelArch::MnistCnn, 77);
    config.mode = aergia::config::Mode::Timing;
    config.codec = codec;
    let mut engine = Engine::new(config, Strategy::aergia_default()).expect("valid smoke config");
    let result = engine.run().expect("timing run");
    result.mean_round_bytes()
}

/// Peak resident client-state bytes at the scale-out smoke point (100k
/// simulated clients, 1k trained per round, cohort-sampled pool). The
/// figure is deterministic — shard sizes and the pool's byte model are
/// pure functions of the configuration — and gates like a wall-time:
/// resident client state growing 2x (e.g. the pool silently holding the
/// population again) fails CI.
fn measure_resident_client_bytes() -> f64 {
    use aergia::topology::TopologyBuilder;
    use aergia_bench::scaleout_config;
    let config = scaleout_config(100_000, 1_000, 2, 0x5ca1e);
    let topology = TopologyBuilder::new().edge_cohorts(8, 0x5ca1e);
    let mut engine =
        Engine::with_topology(config, Strategy::FedAvg, topology).expect("valid scale-out config");
    let result = engine.run().expect("timing run");
    result.rounds.iter().map(|r| r.pool.resident_bytes).max().unwrap_or(0) as f64
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_smoke: {e}");
            std::process::exit(2);
        }
    };

    // Allocation budget first: in-process, before shelling anything out
    // and before the global pool's first use, so the AERGIA_THREADS=1 pin
    // actually sizes it. The original value is restored afterwards so the
    // shelled-out harness children see the caller's environment.
    eprintln!("bench_smoke: measuring steady-state allocations per round");
    let orig_threads = std::env::var_os("AERGIA_THREADS");
    std::env::set_var("AERGIA_THREADS", "1");
    let allocs_per_round = measure_allocs_per_round();
    eprintln!("bench_smoke: allocs_per_round = {allocs_per_round:.0}");
    // Both dispatch paths get a gate entry: the autotuned pick for this
    // machine's active ISA tier, and the portable scalar 4×8 everything is
    // bit-compared against. On a scalar-only host (or AERGIA_FORCE_SCALAR)
    // the two coincide.
    let isa = active_isa();
    let tuned = tuned_variant(GemmOp::Nn, 2048, 576, 64);
    eprintln!("bench_smoke: measuring packed GEMM throughput (isa {})", isa.label());
    let matmul_gflops = measure_matmul_gflops(tuned);
    eprintln!(
        "bench_smoke: matmul_gflops = {matmul_gflops:.1} ({} {}x{})",
        tuned.isa.label(),
        tuned.mr,
        tuned.nr
    );
    let matmul_scalar_gflops = measure_matmul_gflops(KernelVariant::PORTABLE);
    eprintln!("bench_smoke: matmul_scalar_gflops = {matmul_scalar_gflops:.1}");
    match orig_threads {
        Some(value) => std::env::set_var("AERGIA_THREADS", value),
        None => std::env::remove_var("AERGIA_THREADS"),
    }

    // Build every bench target untimed so the measurements below are pure
    // harness wall-time.
    eprintln!("bench_smoke: pre-building bench targets");
    let status = cargo().args(["bench", "--no-run"]).status().expect("spawn cargo bench --no-run");
    assert!(status.success(), "cargo bench --no-run failed");

    let mut report = BenchReport::new();
    report.insert("allocs_per_round".to_string(), allocs_per_round);
    report.insert("matmul_gflops".to_string(), matmul_gflops);
    report.insert("matmul_scalar_gflops".to_string(), matmul_scalar_gflops);
    // The deterministic in-process measurements below run with the
    // telemetry layer on, so the artifact also carries the engine's own
    // counters (rounds, participants, pool traffic) next to the figures
    // derived from them. Enabled only now: the allocation budget above
    // must see the layer's true disabled-mode (allocation-free) cost.
    aergia_telemetry::enable();
    // Bytes-on-wire per round, per codec: deterministic figures (timing
    // mode, virtual network) gated exactly like the wall-times so protocol
    // bloat — or a codec silently falling back to dense — fails the build.
    for (name, codec) in [
        ("bytes_per_round_dense_f32", CodecConfig::DenseF32),
        ("bytes_per_round_quant_i8", CodecConfig::QuantI8),
        ("bytes_per_round_topk_delta", CodecConfig::TopKDelta { keep_permille: 50 }),
    ] {
        let bytes = measure_bytes_per_round(codec);
        eprintln!("bench_smoke: {name} = {bytes:.0}");
        report.insert(name.to_string(), bytes);
    }
    // Resident client-state bytes at the 100k-simulated scale-out point:
    // the memory-model gate — this figure must track the participation
    // cap, never the simulated population.
    let resident_client_bytes = measure_resident_client_bytes();
    eprintln!("bench_smoke: resident_client_bytes = {resident_client_bytes:.0}");
    report.insert("resident_client_bytes".to_string(), resident_client_bytes);
    // Embed the deterministic telemetry counters those runs produced,
    // then switch the layer back off before the shelled-out harnesses.
    embed_telemetry(&mut report, &aergia_telemetry::snapshot());
    aergia_telemetry::disable();
    for &name in HARNESSES {
        eprintln!("bench_smoke: running {name}");
        let started = Instant::now();
        let status = cargo()
            .args(["bench", "--bench", name])
            .status()
            .unwrap_or_else(|e| panic!("spawn cargo bench --bench {name}: {e}"));
        let secs = started.elapsed().as_secs_f64();
        assert!(status.success(), "bench --bench {name} exited with {status}");
        report.insert(name.to_string(), secs);
        eprintln!("bench_smoke: {name} took {secs:.3}s");
    }

    let json = to_json(&report);
    print!("{json}");
    if let Some(path) = &options.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("bench_smoke: wrote {path}");
    }

    let Some(baseline_path) = &options.baseline else { return };
    let baseline_text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline =
        from_json(&baseline_text).unwrap_or_else(|e| panic!("parse {baseline_path}: {e}"));
    let found = regressions(&baseline, &report, options.max_regression);
    if found.is_empty() {
        eprintln!(
            "bench_smoke: no harness regressed more than {:.1}x against {baseline_path}",
            options.max_regression
        );
        return;
    }
    for r in &found {
        // Report the regression factor so it always reads ">= limit":
        // wall-times regress by getting bigger, throughputs by shrinking.
        let (unit, factor) = if is_throughput(&r.name) {
            (" GFLOP/s", r.baseline_secs / r.current_secs)
        } else {
            ("s", r.current_secs / r.baseline_secs)
        };
        eprintln!(
            "bench_smoke: REGRESSION {}: {:.3}{unit} vs baseline {:.3}{unit} ({factor:.1}x, limit {:.1}x)",
            r.name, r.current_secs, r.baseline_secs, options.max_regression
        );
    }
    std::process::exit(1);
}
