//! Shared harness code for the figure/table benchmarks.
//!
//! Every `benches/fig*.rs` target regenerates one table or figure of the
//! paper's evaluation section: it builds the experiment configurations,
//! runs them through the [`aergia::Engine`] and prints the same
//! rows/series the paper plots. The [`Scale`] knob (environment variable
//! `AERGIA_SCALE`) trades fidelity for wall-clock time:
//!
//! * `smoke` — minimal sizes, seconds per figure (CI);
//! * `default` — the documented default, minutes for the full suite;
//! * `paper` — paper-sized clusters and round counts (hours).

pub mod regression;

use std::fmt::Display;

use aergia::prelude::*;
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;

/// Experiment scale selected via `AERGIA_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny smoke-test sizes.
    Smoke,
    /// The default benchmark scale.
    Default,
    /// Paper-sized experiments (24 clients, 100 rounds).
    Paper,
}

impl Scale {
    /// Reads `AERGIA_SCALE` (defaults to [`Scale::Default`]).
    pub fn from_env() -> Self {
        match std::env::var("AERGIA_SCALE").unwrap_or_default().as_str() {
            "smoke" => Scale::Smoke,
            "paper" => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Scales a default-size quantity, with a floor of `min`.
    pub fn scaled(&self, default: usize, min: usize) -> usize {
        let v = match self {
            Scale::Smoke => default / 2,
            Scale::Default => default,
            Scale::Paper => default * 3,
        };
        v.max(min)
    }

    /// Cluster size for the main comparison figures.
    pub fn clients(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Default => 8,
            Scale::Paper => 24,
        }
    }

    /// Communication rounds for the main comparison figures.
    pub fn rounds(&self) -> u32 {
        match self {
            Scale::Smoke => 3,
            Scale::Default => 8,
            Scale::Paper => 100,
        }
    }

    /// Local batch updates per round (paper: 1600).
    pub fn local_updates(&self) -> u32 {
        match self {
            Scale::Smoke => 6,
            Scale::Default => 12,
            Scale::Paper => 128,
        }
    }

    /// Aergia's profiling window (paper: 100 of 1600, a 1/16 ratio).
    pub fn profile_batches(&self) -> u32 {
        (self.local_updates() / 16).max(1)
    }
}

/// Engine-level parallelism for benchmark configurations, read from
/// `AERGIA_THREADS` (the same variable that sizes the global
/// [`aergia_runtime`] pool): unset or unparsable means `0` — one
/// work-stealing task per client — except on a single-core host, where the
/// fan-out is pure scheduling overhead and the default drops to `1` (fully
/// serial rounds, the same mode the determinism suite uses for its
/// reference run). Rounds are bit-identical across parallelism settings,
/// so the adaptive default never changes benchmark output.
pub fn engine_parallelism() -> usize {
    match std::env::var("AERGIA_THREADS").ok().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None if single_core() => 1,
        None => 0,
    }
}

/// Whether the host exposes only one hardware thread.
fn single_core() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() == 1)
}

/// The paper's dataset/architecture pairings for Figures 6 and 7.
pub fn eval_pairs() -> Vec<(DatasetSpec, ModelArch)> {
    vec![
        (DatasetSpec::MnistLike, ModelArch::MnistCnn),
        (DatasetSpec::FmnistLike, ModelArch::FmnistCnn),
        (DatasetSpec::Cifar10Like, ModelArch::Cifar10Cnn),
    ]
}

/// The five algorithms of Figures 6–8.
pub fn algorithms(scale: Scale) -> Vec<Strategy> {
    vec![
        Strategy::FedAvg,
        Strategy::FedProx { mu: 0.05 },
        Strategy::FedNova,
        Strategy::tifl_default(),
        Strategy::Aergia {
            similarity_factor: 1.0,
            profile_batches: scale.profile_batches(),
            op_variant: Default::default(),
        },
    ]
}

/// A baseline experiment configuration for the comparison figures.
pub fn base_config(
    scale: Scale,
    spec: DatasetSpec,
    arch: ModelArch,
    seed: u64,
) -> ExperimentConfig {
    let clients = scale.clients();
    // CIFAR-scale convolutions are ~8× heavier; shrink the workload so the
    // suite stays laptop-fast while the relative comparisons survive.
    let heavy = matches!(spec, DatasetSpec::Cifar10Like | DatasetSpec::Cifar100Like);
    let (clients, rounds, updates) = if heavy && scale != Scale::Paper {
        (clients.min(6), scale.rounds().min(6), scale.local_updates().min(8))
    } else {
        (clients, scale.rounds(), scale.local_updates())
    };
    ExperimentConfig {
        dataset: DataConfig {
            spec,
            train_size: scale.scaled(80, 24) * clients,
            test_size: scale.scaled(256, 64),
            seed: seed ^ 0xda7a,
        },
        arch,
        partition: Scheme::Iid,
        num_clients: clients,
        clients_per_round: clients,
        rounds,
        local_updates: updates,
        batch_size: 8,
        speeds: aergia_simnet::cluster::uniform_speeds(clients, 0.1, 1.0, seed ^ 0x5eed),
        eval_samples: scale.scaled(256, 64),
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        seed,
        ..ExperimentConfig::default()
    }
}

/// The scale-out experiment point: `simulated` timing-mode clients of
/// which `trained` are selected (and pooled) per round, under the
/// cohort-sampled client-state mode. Shared by the `scaleout_100k`
/// harness and `bench_smoke`'s in-process `resident_client_bytes`
/// measurement so the gate tracks exactly what the harness runs.
pub fn scaleout_config(
    simulated: usize,
    trained: usize,
    rounds: u32,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: 4096,
            test_size: 64,
            seed: seed ^ 0xda7a,
        },
        arch: ModelArch::MnistCnn,
        num_clients: simulated,
        clients_per_round: trained,
        rounds,
        local_updates: 6,
        batch_size: 8,
        speeds: aergia_simnet::cluster::uniform_speeds(simulated, 0.05, 1.0, seed),
        mode: Mode::Timing,
        parallelism: engine_parallelism(),
        client_state: aergia::config::ClientStateMode::CohortSampled { max_resident: trained },
        seed,
        ..ExperimentConfig::default()
    }
}

/// Runs one experiment to completion.
///
/// # Panics
///
/// Panics on configuration errors — benchmark configs are static.
pub fn run(config: ExperimentConfig, strategy: Strategy) -> RunResult {
    Engine::new(config, strategy)
        .expect("benchmark configuration must be valid")
        .run()
        .expect("benchmark run must succeed")
}

/// Runs `jobs` experiments, two at a time (the benchmark hosts have few
/// cores), preserving input order in the output. A single-core host runs
/// the queue with one worker instead — two jobs time-slicing one core only
/// thrash caches — which cannot change results: each job is a pure
/// function of its configuration.
pub fn run_parallel(jobs: Vec<(ExperimentConfig, Strategy)>) -> Vec<RunResult> {
    let workers = if single_core() { 1 } else { 2 };
    let n = jobs.len();
    let mut results: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
    let queue: std::sync::Mutex<Vec<(usize, ExperimentConfig, Strategy)>> = std::sync::Mutex::new(
        jobs.into_iter().enumerate().map(|(i, (c, s))| (i, c, s)).rev().collect(),
    );
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                match job {
                    Some((i, config, strategy)) => {
                        let result = run(config, strategy);
                        results_mx.lock().expect("results lock")[i] = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("every job ran")).collect()
}

/// Prints a figure header with the active scale.
pub fn header(figure: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{figure} — {caption}");
    println!("scale: {:?} (set AERGIA_SCALE=smoke|default|paper)", Scale::from_env());
    println!("================================================================");
}

/// Prints one aligned table row.
pub fn row(cells: &[&dyn Display]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:<18}"));
        } else {
            line.push_str(&format!("{c:>14}"));
        }
    }
    println!("{line}");
}

/// Formats a float with 3 decimals (table cell helper).
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats seconds with 1 decimal.
pub fn secs(x: f64) -> String {
    format!("{x:.1}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All `AERGIA_SCALE` parsing cases live in one test: the variable is
    /// process-global, so spreading set/remove across parallel tests
    /// would race.
    #[test]
    fn scale_from_env_parses_every_variant() {
        std::env::set_var("AERGIA_SCALE", "smoke");
        assert_eq!(Scale::from_env(), Scale::Smoke);

        std::env::set_var("AERGIA_SCALE", "paper");
        assert_eq!(Scale::from_env(), Scale::Paper);

        std::env::set_var("AERGIA_SCALE", "default");
        assert_eq!(Scale::from_env(), Scale::Default);

        // Unknown values and the empty string fall back to the default
        // scale rather than failing the whole benchmark run.
        for junk in ["SMOKE", "Paper", "huge", "1", ""] {
            std::env::set_var("AERGIA_SCALE", junk);
            assert_eq!(Scale::from_env(), Scale::Default, "junk value {junk:?}");
        }

        std::env::remove_var("AERGIA_SCALE");
        assert_eq!(Scale::from_env(), Scale::Default, "unset variable");
    }

    #[test]
    fn scaled_applies_factor_and_floor() {
        assert_eq!(Scale::Smoke.scaled(80, 24), 40);
        assert_eq!(Scale::Default.scaled(80, 24), 80);
        assert_eq!(Scale::Paper.scaled(80, 24), 240);
        // The floor wins when halving would undershoot it.
        assert_eq!(Scale::Smoke.scaled(10, 24), 24);
    }

    #[test]
    fn scales_are_ordered_smoke_to_paper() {
        let scales = [Scale::Smoke, Scale::Default, Scale::Paper];
        assert!(scales.windows(2).all(|w| w[0].clients() < w[1].clients()));
        assert!(scales.windows(2).all(|w| w[0].rounds() < w[1].rounds()));
        assert!(scales.windows(2).all(|w| w[0].local_updates() < w[1].local_updates()));
    }

    #[test]
    fn profile_window_is_a_sixteenth_with_floor_one() {
        assert_eq!(Scale::Paper.profile_batches(), Scale::Paper.local_updates() / 16);
        assert!(Scale::Smoke.profile_batches() >= 1);
    }
}
