//! Wall-time bookkeeping for the `bench-regression` CI gate.
//!
//! The `bench_smoke` binary times every figure harness at
//! `AERGIA_SCALE=smoke`, records the wall-times in a flat JSON object
//! (`BENCH_smoke.json`, figure name → seconds) and compares them against
//! the checked-in baseline: any entry slower than `baseline ×
//! max_regression` fails the job. Counted figures ride the same gate with
//! wall-time semantics (lower is better): `allocs_per_round` (steady-state
//! heap allocations) and the `bytes_per_round_*` family (simulated
//! bytes-on-wire per round, one entry per wire codec — deterministic, so a
//! breach means the protocol's byte footprint actually grew). Entries
//! named `*_gflops` are *throughputs* (GFLOP/s — e.g. the `matmul_gflops`
//! GEMM figure), where higher is better: they regress when the current
//! value falls below `baseline ÷ max_regression`. The format is
//! deliberately trivial — the workspace is offline, so both the writer and
//! the parser live here instead of pulling in `serde_json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Figure-name → wall-time-seconds map, ordered for stable output.
pub type BenchReport = BTreeMap<String, f64>;

/// Renders a report as the flat JSON object the CI artifact carries.
#[must_use]
pub fn to_json(report: &BenchReport) -> String {
    let mut out = String::from("{\n");
    for (i, (name, secs)) in report.iter().enumerate() {
        let comma = if i + 1 == report.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{name}\": {secs:.3}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses the flat JSON object produced by [`to_json`].
///
/// Accepts exactly the subset this crate writes — one `"key": number`
/// pair per entry, string keys without escapes — which keeps the offline
/// parser small while still round-tripping every report byte-for-byte.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn from_json(text: &str) -> Result<BenchReport, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "expected a top-level JSON object".to_string())?;
    let mut report = BenchReport::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) =
            pair.split_once(':').ok_or_else(|| format!("missing ':' in entry {pair:?}"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("key is not a JSON string: {key:?}"))?;
        if key.contains(['"', '\\']) {
            return Err(format!("escaped keys are not supported: {key:?}"));
        }
        let value: f64 =
            value.trim().parse().map_err(|e| format!("bad number for {key:?}: {e}"))?;
        report.insert(key.to_string(), value);
    }
    Ok(report)
}

/// Folds a telemetry snapshot (the Prometheus-style text
/// [`aergia_telemetry::snapshot`] renders) into a report so bench
/// artifacts carry the run's deterministic counters next to the
/// wall-times. Only metrics under the listed deterministic prefixes are
/// kept — engine, pool, profile and codec figures, all pure functions
/// of the configuration — never wall-clock metrics like GEMM GFLOP/s
/// gauges or network round-trips. Per-bucket histogram entries are
/// skipped (`_sum`/`_count` carry the signal at artifact granularity).
///
/// Embedded keys are prefixed `telemetry_` and label syntax is
/// flattened to `[a-z0-9_]` so they survive the flat JSON format:
/// `aergia_codec_encoded_bytes_total{codec="dense_f32"}` becomes
/// `telemetry_aergia_codec_encoded_bytes_total_codec_dense_f32`.
pub fn embed_telemetry(report: &mut BenchReport, snapshot_text: &str) {
    const DETERMINISTIC_PREFIXES: &[&str] =
        &["aergia_engine_", "aergia_pool_", "aergia_profile_", "aergia_codec_"];
    // A malformed snapshot embeds nothing — the wall-time gate must not
    // fail on a telemetry formatting problem.
    let Ok(metrics) = aergia_telemetry::parse_snapshot(snapshot_text) else { return };
    for (name, value) in metrics {
        if !DETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
            continue;
        }
        if name.contains("_bucket{") {
            continue;
        }
        let mut key = String::with_capacity("telemetry_".len() + name.len());
        key.push_str("telemetry_");
        let mut last_underscore = false;
        for c in name.chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                last_underscore = c == '_';
                key.push(c);
            } else if !last_underscore {
                last_underscore = true;
                key.push('_');
            }
        }
        while key.ends_with('_') {
            key.pop();
        }
        report.insert(key, value);
    }
}

/// One benchmark whose current value breaches the regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Figure harness name.
    pub name: String,
    /// Baseline value (seconds for wall-time entries, GFLOP/s for
    /// `*_gflops` throughput entries).
    pub baseline_secs: f64,
    /// Current value, same unit as the baseline.
    pub current_secs: f64,
}

/// Name suffix marking a throughput entry (higher is better) rather than
/// a wall-time (lower is better).
pub const THROUGHPUT_SUFFIX: &str = "_gflops";

/// Whether an entry name denotes a throughput (see [`THROUGHPUT_SUFFIX`]).
#[must_use]
pub fn is_throughput(name: &str) -> bool {
    name.ends_with(THROUGHPUT_SUFFIX)
}

/// Compares a fresh report against the baseline: a wall-time entry
/// regresses when it is more than `max_ratio` times slower than its
/// baseline; a throughput entry (`*_gflops`) regresses when it drops
/// below `baseline ÷ max_ratio`. Entries only present on one side are
/// ignored (new figures don't need a lockstep baseline update; retired
/// figures don't block).
///
/// A small absolute floor (0.5, in the entry's own unit) keeps noisy
/// low-magnitude entries from tripping the gate: sub-half-second
/// harnesses never gate, and neither do throughput entries whose
/// baseline is at or below 0.5 GFLOP/s.
#[must_use]
pub fn regressions(
    baseline: &BenchReport,
    current: &BenchReport,
    max_ratio: f64,
) -> Vec<Regression> {
    const NOISE_FLOOR: f64 = 0.5;
    let mut out = Vec::new();
    for (name, &current_secs) in current {
        let Some(&baseline_secs) = baseline.get(name) else { continue };
        let regressed = if is_throughput(name) {
            baseline_secs > NOISE_FLOOR && current_secs * max_ratio < baseline_secs
        } else {
            current_secs > (baseline_secs * max_ratio).max(NOISE_FLOOR)
        };
        if regressed {
            out.push(Regression { name: name.clone(), baseline_secs, current_secs });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> BenchReport {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn json_round_trips() {
        let r = report(&[("fig6_iid", 12.345), ("fig8_round_density", 0.125), ("table1", 3.0)]);
        let parsed = from_json(&to_json(&r)).unwrap();
        assert_eq!(parsed.len(), 3);
        assert!((parsed["fig6_iid"] - 12.345).abs() < 1e-9);
        assert!((parsed["fig8_round_density"] - 0.125).abs() < 1e-9);
    }

    #[test]
    fn empty_report_round_trips() {
        assert_eq!(from_json(&to_json(&BenchReport::new())).unwrap(), BenchReport::new());
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"a\" 1.0}").unwrap_err().contains(':'));
        assert!(from_json("{\"a\": x}").unwrap_err().contains("bad number"));
        assert!(from_json("{a: 1.0}").is_err());
    }

    #[test]
    fn regression_gate_fires_only_above_the_ratio() {
        let baseline = report(&[("fig6_iid", 10.0), ("fig7_noniid", 8.0)]);
        let ok = report(&[("fig6_iid", 19.9), ("fig7_noniid", 8.1)]);
        assert!(regressions(&baseline, &ok, 2.0).is_empty());

        let bad = report(&[("fig6_iid", 20.1), ("fig7_noniid", 8.1)]);
        let found = regressions(&baseline, &bad, 2.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "fig6_iid");
    }

    #[test]
    fn unmatched_entries_do_not_gate() {
        let baseline = report(&[("retired_figure", 5.0)]);
        let current = report(&[("brand_new_figure", 500.0)]);
        assert!(regressions(&baseline, &current, 2.0).is_empty());
    }

    #[test]
    fn bytes_entries_gate_like_wall_times() {
        // The bytes-per-round figures are deterministic counts; doubling
        // one (protocol bloat, or a codec quietly shipping dense frames)
        // must trip the gate exactly like a slow harness.
        let baseline = report(&[("bytes_per_round_topk_delta", 90_000.0)]);
        let ok = report(&[("bytes_per_round_topk_delta", 179_000.0)]);
        assert!(regressions(&baseline, &ok, 2.0).is_empty());
        let bloated = report(&[("bytes_per_round_topk_delta", 181_000.0)]);
        assert_eq!(regressions(&baseline, &bloated, 2.0).len(), 1);
        // Shrinking is never a regression.
        let slim = report(&[("bytes_per_round_topk_delta", 9_000.0)]);
        assert!(regressions(&baseline, &slim, 2.0).is_empty());
    }

    #[test]
    fn throughput_entries_gate_on_drops_not_gains() {
        let baseline = report(&[("matmul_gflops", 20.0)]);
        // Faster is never a regression.
        let faster = report(&[("matmul_gflops", 80.0)]);
        assert!(regressions(&baseline, &faster, 2.0).is_empty());
        // A drop within the ratio passes; beyond it fails.
        let ok = report(&[("matmul_gflops", 10.1)]);
        assert!(regressions(&baseline, &ok, 2.0).is_empty());
        let bad = report(&[("matmul_gflops", 9.9)]);
        let found = regressions(&baseline, &bad, 2.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "matmul_gflops");
    }

    #[test]
    fn throughput_noise_floor_shields_tiny_baselines() {
        let baseline = report(&[("tiny_gflops", 0.4)]);
        let current = report(&[("tiny_gflops", 0.01)]);
        assert!(regressions(&baseline, &current, 2.0).is_empty());
    }

    #[test]
    fn telemetry_embeds_deterministic_metrics_with_flat_keys() {
        let snapshot = "\
# TYPE aergia_engine_rounds_total counter
aergia_engine_rounds_total 12
# TYPE aergia_codec_encoded_bytes_total counter
aergia_codec_encoded_bytes_total{codec=\"dense_f32\",kind=\"features\"} 4096
# TYPE aergia_profile_t123_seconds histogram
aergia_profile_t123_seconds_bucket{le=\"0.1\"} 3
aergia_profile_t123_seconds_sum 0.25
aergia_profile_t123_seconds_count 3
# TYPE aergia_gemm_tuned_gflops gauge
aergia_gemm_tuned_gflops{op=\"nn\"} 42.5
# TYPE aergia_net_order_rtt_seconds histogram
aergia_net_order_rtt_seconds_sum 1.5
";
        let mut r = BenchReport::new();
        embed_telemetry(&mut r, snapshot);
        assert!((r["telemetry_aergia_engine_rounds_total"] - 12.0).abs() < 1e-9);
        let flat = "telemetry_aergia_codec_encoded_bytes_total_codec_dense_f32_kind_features";
        assert!((r[flat] - 4096.0).abs() < 1e-9, "label syntax flattens to {flat}");
        assert!((r["telemetry_aergia_profile_t123_seconds_sum"] - 0.25).abs() < 1e-9);
        // Per-bucket entries and wall-clock metrics stay out.
        assert!(r.keys().all(|k| !k.contains("bucket")));
        assert!(r.keys().all(|k| !k.contains("gemm") && !k.contains("net")));
        // Embedded keys survive the flat JSON artifact format.
        let parsed = from_json(&to_json(&r)).unwrap();
        assert_eq!(parsed.len(), r.len());
    }

    #[test]
    fn malformed_telemetry_snapshot_embeds_nothing() {
        let mut r = report(&[("fig6_iid", 1.0)]);
        embed_telemetry(&mut r, "aergia_engine_rounds_total not-a-number");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn noise_floor_shields_subsecond_harnesses() {
        let baseline = report(&[("ablation", 0.01)]);
        let current = report(&[("ablation", 0.4)]);
        assert!(regressions(&baseline, &current, 2.0).is_empty(), "0.4s is under the 0.5s floor");
        let current = report(&[("ablation", 0.6)]);
        assert_eq!(regressions(&baseline, &current, 2.0).len(), 1);
    }
}
