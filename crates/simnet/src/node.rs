//! Node identity and CPU speed models.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Identifies a node in the simulated cluster.
///
/// By convention the federator is [`NodeId::FEDERATOR`] and clients are
/// numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The federator's reserved identity.
    pub const FEDERATOR: NodeId = NodeId(u32::MAX);

    /// True for the federator id.
    pub fn is_federator(self) -> bool {
        self == NodeId::FEDERATOR
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_federator() {
            write!(f, "federator")
        } else {
            write!(f, "client-{}", self.0)
        }
    }
}

/// How fast a node executes compute work.
///
/// `speed` is the fraction of a reference core the node gets — the
/// simulation analogue of the paper's Docker CPU throttling (0.1–1.0).
/// `base_flops` is the reference core's throughput; a task of `W` FLOPs
/// takes `W / (speed · base_flops)` virtual seconds.
///
/// # Examples
///
/// ```
/// use aergia_simnet::CpuModel;
///
/// let fast = CpuModel::new(1.0);
/// let slow = CpuModel::new(0.25);
/// let work = 1e9;
/// assert_eq!(
///     slow.work_duration(work).as_micros(),
///     fast.work_duration(work).as_micros() * 4
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    speed: f64,
    base_flops: f64,
}

/// Reference throughput of a full simulated core (FLOPs/second). The
/// absolute value only sets the unit of reported times; relative results
/// are independent of it.
pub const BASE_FLOPS: f64 = 2.0e9;

impl CpuModel {
    /// Creates a CPU model with the default reference throughput.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed <= 1.0`.
    pub fn new(speed: f64) -> Self {
        Self::with_base_flops(speed, BASE_FLOPS)
    }

    /// Creates a CPU model with an explicit reference throughput.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed <= 1.0` and `base_flops > 0`.
    pub fn with_base_flops(speed: f64, base_flops: f64) -> Self {
        assert!(speed > 0.0 && speed <= 1.0, "CpuModel: speed {speed} outside (0, 1]");
        assert!(base_flops > 0.0, "CpuModel: non-positive base flops");
        CpuModel { speed, base_flops }
    }

    /// The node's speed fraction.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Changes the node's speed (the paper's transient-load scenario where
    /// collocated applications steal cycles).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed <= 1.0`.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(speed > 0.0 && speed <= 1.0, "CpuModel: speed {speed} outside (0, 1]");
        self.speed = speed;
    }

    /// Virtual time to execute `flops` of compute work.
    pub fn work_duration(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / (self.speed * self.base_flops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federator_id_is_distinct() {
        assert!(NodeId::FEDERATOR.is_federator());
        assert!(!NodeId(0).is_federator());
        assert_eq!(NodeId::FEDERATOR.to_string(), "federator");
        assert_eq!(NodeId(3).to_string(), "client-3");
    }

    #[test]
    fn duration_is_inverse_in_speed() {
        let w = 4.0e9;
        let full = CpuModel::new(1.0).work_duration(w);
        let half = CpuModel::new(0.5).work_duration(w);
        assert_eq!(half.as_micros(), full.as_micros() * 2);
    }

    #[test]
    fn set_speed_changes_future_work_only() {
        let mut cpu = CpuModel::new(1.0);
        let before = cpu.work_duration(1e9);
        cpu.set_speed(0.1);
        assert!(cpu.work_duration(1e9) > before);
        assert_eq!(cpu.speed(), 0.1);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_speed_is_rejected() {
        CpuModel::new(0.0);
    }

    #[test]
    fn custom_base_flops() {
        let cpu = CpuModel::with_base_flops(1.0, 1e6);
        assert_eq!(cpu.work_duration(1e6).as_secs_f64(), 1.0);
    }
}
