//! Virtual time: instants and durations with microsecond resolution.
//!
//! Integer microseconds keep event ordering exact (no float comparison
//! surprises) while leaving plenty of range (≈ 584 000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock (microseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Raw microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a duration from float seconds, rounding to microseconds and
    /// saturating below zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration(0);
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in float seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "SimDuration::mul_f64: negative factor {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Saturating difference: `earlier - later` is zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 1.5);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!((late - early).as_micros(), 20);
    }

    #[test]
    fn from_secs_clamps_negative_and_nan() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn mul_scales() {
        let d = SimDuration::from_secs_f64(2.0).mul_f64(0.25);
        assert_eq!(d.as_secs_f64(), 0.5);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(1_000_000).to_string(), "t=1.000000s");
        assert_eq!(SimDuration::from_micros(500_000).to_string(), "0.500000s");
    }
}
