//! Link models and message-delivery timing with fault injection.
//!
//! The paper assumes asynchronous but *reliable* communication (§3.1): no
//! delivery bound, but every message eventually arrives. [`Network`]
//! models per-link latency and bandwidth, supports per-pair overrides
//! (heterogeneous edge connectivity) and — for robustness tests only —
//! probabilistic message drops and extra jitter, which the protocol must
//! tolerate via its round sequence numbers.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::time::SimDuration;

/// Latency + bandwidth of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Sustained throughput in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkModel {
    /// A symmetric datacenter-style default: 1 ms latency, 1 Gbit/s.
    pub fn datacenter() -> Self {
        LinkModel { latency: SimDuration::from_micros(1_000), bandwidth_bps: 125_000_000.0 }
    }

    /// A constrained edge uplink: 20 ms latency, 20 Mbit/s.
    pub fn edge() -> Self {
        LinkModel { latency: SimDuration::from_micros(20_000), bandwidth_bps: 2_500_000.0 }
    }

    /// Time to push `bytes` through this link.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        assert!(self.bandwidth_bps > 0.0, "LinkModel: non-positive bandwidth");
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Verdict for one message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrives after the returned delay.
    After(SimDuration),
    /// The message was dropped by fault injection.
    Dropped,
}

/// The cluster's communication fabric.
///
/// Peer-to-peer by default (any node can message any node, as the paper's
/// testbed allows); per-pair overrides model slower links.
#[derive(Debug)]
pub struct Network {
    default_link: LinkModel,
    overrides: HashMap<(NodeId, NodeId), LinkModel>,
    drop_prob: f64,
    jitter_max: SimDuration,
    rng: StdRng,
    bytes_delivered: u64,
}

impl Network {
    /// Creates a fault-free network where every link uses `default_link`.
    pub fn new(default_link: LinkModel) -> Self {
        Network {
            default_link,
            overrides: HashMap::new(),
            drop_prob: 0.0,
            jitter_max: SimDuration::ZERO,
            rng: StdRng::seed_from_u64(0),
            bytes_delivered: 0,
        }
    }

    /// Total payload bytes of every successfully delivered message since
    /// construction — the run's bytes-on-wire odometer. Dropped messages
    /// (fault injection) are not counted.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Captures the fault-injection state (drop probability, jitter bound,
    /// raw RNG state) for a resumable checkpoint.
    pub fn fault_state(&self) -> (f64, SimDuration, [u64; 4]) {
        (self.drop_prob, self.jitter_max, self.rng.state())
    }

    /// Restores the state captured by [`Network::fault_state`] plus the
    /// bytes odometer, continuing drop/jitter draws exactly where the
    /// snapshot left them.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= drop_prob < 1`.
    pub fn restore_fault_state(
        &mut self,
        drop_prob: f64,
        jitter_max: SimDuration,
        rng: [u64; 4],
        bytes_delivered: u64,
    ) {
        assert!((0.0..1.0).contains(&drop_prob), "Network: drop_prob {drop_prob} outside [0,1)");
        self.drop_prob = drop_prob;
        self.jitter_max = jitter_max;
        self.rng = StdRng::from_state(rng);
        self.bytes_delivered = bytes_delivered;
    }

    /// Overrides the link model for the directed pair `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkModel) {
        self.overrides.insert((from, to), link);
    }

    /// Enables fault injection: each send is dropped with `drop_prob` and
    /// otherwise delayed by up to `jitter_max` extra (uniform), driven by
    /// a deterministic RNG seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= drop_prob < 1`.
    pub fn enable_faults(&mut self, drop_prob: f64, jitter_max: SimDuration, seed: u64) {
        assert!((0.0..1.0).contains(&drop_prob), "Network: drop_prob {drop_prob} outside [0,1)");
        self.drop_prob = drop_prob;
        self.jitter_max = jitter_max;
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The link model in effect for `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkModel {
        self.overrides.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// Decides the fate of a `bytes`-sized message on `from → to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: usize) -> Delivery {
        if self.drop_prob > 0.0 && self.rng.random_bool(self.drop_prob) {
            return Delivery::Dropped;
        }
        let mut delay = self.link(from, to).transfer_time(bytes);
        if self.jitter_max > SimDuration::ZERO {
            let extra = self.rng.random_range(0..=self.jitter_max.as_micros());
            delay += SimDuration::from_micros(extra);
        }
        self.bytes_delivered += bytes as u64;
        Delivery::After(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let link = LinkModel { latency: SimDuration::from_micros(1000), bandwidth_bps: 1e6 };
        // 1 MB over 1 MB/s = 1 s, plus 1 ms latency.
        let t = link.transfer_time(1_000_000);
        assert_eq!(t.as_micros(), 1_001_000);
    }

    #[test]
    fn default_network_is_reliable_and_deterministic() {
        let mut net = Network::new(LinkModel::datacenter());
        for _ in 0..100 {
            match net.send(NodeId(0), NodeId(1), 1024) {
                Delivery::After(_) => {}
                Delivery::Dropped => panic!("fault-free network dropped a message"),
            }
        }
    }

    #[test]
    fn overrides_apply_per_direction() {
        let mut net = Network::new(LinkModel::datacenter());
        net.set_link(NodeId(0), NodeId(1), LinkModel::edge());
        let slow = net.link(NodeId(0), NodeId(1)).transfer_time(1_000_000);
        let fast = net.link(NodeId(1), NodeId(0)).transfer_time(1_000_000);
        assert!(slow > fast);
    }

    #[test]
    fn faults_drop_roughly_the_configured_fraction() {
        let mut net = Network::new(LinkModel::datacenter());
        net.enable_faults(0.3, SimDuration::ZERO, 42);
        let drops = (0..2000)
            .filter(|_| matches!(net.send(NodeId(0), NodeId(1), 10), Delivery::Dropped))
            .count();
        assert!((450..750).contains(&drops), "dropped {drops}/2000, expected ≈600");
    }

    #[test]
    fn jitter_adds_bounded_delay() {
        let mut net = Network::new(LinkModel::datacenter());
        net.enable_faults(0.0, SimDuration::from_micros(500), 7);
        let base = LinkModel::datacenter().transfer_time(10);
        for _ in 0..100 {
            match net.send(NodeId(0), NodeId(1), 10) {
                Delivery::After(d) => {
                    assert!(d >= base);
                    assert!(d.as_micros() <= base.as_micros() + 500);
                }
                Delivery::Dropped => panic!("no drops configured"),
            }
        }
    }

    #[test]
    fn bytes_odometer_counts_deliveries_not_drops() {
        let mut net = Network::new(LinkModel::datacenter());
        net.send(NodeId(0), NodeId(1), 100);
        net.send(NodeId(1), NodeId(0), 23);
        assert_eq!(net.bytes_delivered(), 123);
        net.enable_faults(0.999, SimDuration::ZERO, 1);
        for _ in 0..50 {
            net.send(NodeId(0), NodeId(1), 1_000_000);
        }
        assert!(net.bytes_delivered() < 123 + 3_000_000, "drops must not count");
    }

    #[test]
    fn fault_state_round_trip_resumes_draws() {
        let mut net = Network::new(LinkModel::datacenter());
        net.enable_faults(0.4, SimDuration::from_micros(100), 11);
        for _ in 0..25 {
            net.send(NodeId(0), NodeId(1), 5);
        }
        let (p, j, rng) = net.fault_state();
        let odometer = net.bytes_delivered();
        let tail: Vec<_> = (0..25).map(|_| net.send(NodeId(0), NodeId(1), 5)).collect();
        let mut restored = Network::new(LinkModel::datacenter());
        restored.restore_fault_state(p, j, rng, odometer);
        let replay: Vec<_> = (0..25).map(|_| restored.send(NodeId(0), NodeId(1), 5)).collect();
        assert_eq!(tail, replay);
        assert_eq!(net.bytes_delivered(), restored.bytes_delivered());
    }

    #[test]
    fn fault_injection_is_reproducible() {
        let run = |seed| {
            let mut net = Network::new(LinkModel::datacenter());
            net.enable_faults(0.5, SimDuration::from_micros(100), seed);
            (0..50)
                .map(|_| match net.send(NodeId(0), NodeId(1), 1) {
                    Delivery::After(d) => d.as_micros() as i64,
                    Delivery::Dropped => -1,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
