//! Heterogeneous cluster speed assignments.
//!
//! The paper's testbed draws each client's CPU fraction uniformly from
//! [0.1, 1.0] (§5.1); its motivation study (Figure 1(a)) sweeps the
//! *variance* of client speeds at a fixed mean of 0.5. Both generators
//! live here.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Draws `n` client speeds uniformly from `[lo, hi]` — the paper's
/// evaluation setup (`lo = 0.1`, `hi = 1.0`).
///
/// # Panics
///
/// Panics unless `0 < lo <= hi <= 1`.
///
/// # Examples
///
/// ```
/// let speeds = aergia_simnet::cluster::uniform_speeds(24, 0.1, 1.0, 42);
/// assert_eq!(speeds.len(), 24);
/// assert!(speeds.iter().all(|&s| (0.1..=1.0).contains(&s)));
/// ```
pub fn uniform_speeds(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo > 0.0 && lo <= hi && hi <= 1.0, "uniform_speeds: bad range [{lo}, {hi}]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0073_7065_6564); // "speed"
    (0..n).map(|_| rng.random_range(lo..=hi)).collect()
}

/// Produces `n` speeds with mean exactly `mean` and variance exactly
/// `variance` by placing half the clients at `mean − d` and half at
/// `mean + d` with `d = √variance` (odd counts keep one client at the
/// mean). This is the controlled sweep behind Figure 1(a).
///
/// # Panics
///
/// Panics if the implied speeds leave `(0, 1]`.
pub fn speeds_with_variance(n: usize, mean: f64, variance: f64) -> Vec<f64> {
    assert!(variance >= 0.0, "speeds_with_variance: negative variance");
    let d = variance.sqrt();
    let (lo, hi) = (mean - d, mean + d);
    assert!(lo > 0.0 && hi <= 1.0, "speeds_with_variance: mean {mean} ± {d} leaves (0, 1]");
    let mut speeds = Vec::with_capacity(n);
    for i in 0..n {
        if n % 2 == 1 && i == n - 1 {
            speeds.push(mean);
        } else if i % 2 == 0 {
            speeds.push(lo);
        } else {
            speeds.push(hi);
        }
    }
    speeds
}

/// Draws `n` speeds from a clipped Gaussian with the given mean and
/// variance — the randomized counterpart of [`speeds_with_variance`].
///
/// Unlike the exact bimodal generator, random draws reproduce the paper's
/// Figure 1(a) effect that *larger* clusters suffer more from the same
/// variance (they are more likely to contain a very slow client). Speeds
/// are clipped to `[0.05, 1.0]`, so the realized variance is slightly
/// below the target at the extremes.
///
/// # Panics
///
/// Panics if `variance` is negative or `mean` lies outside `(0, 1]`.
pub fn random_speeds_with_variance(n: usize, mean: f64, variance: f64, seed: u64) -> Vec<f64> {
    assert!(variance >= 0.0, "random_speeds_with_variance: negative variance");
    assert!(mean > 0.0 && mean <= 1.0, "random_speeds_with_variance: mean {mean} outside (0, 1]");
    let sd = variance.sqrt();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7273_7065_6564); // "rspeed"
    (0..n)
        .map(|_| {
            // Box–Muller standard normal.
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + sd * z).clamp(0.05, 1.0)
        })
        .collect()
}

/// Sample mean of a speed vector.
pub fn mean(speeds: &[f64]) -> f64 {
    speeds.iter().sum::<f64>() / speeds.len() as f64
}

/// Population variance of a speed vector.
pub fn variance(speeds: &[f64]) -> f64 {
    let m = mean(speeds);
    speeds.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / speeds.len() as f64
}

/// Splits a cluster into the paper's weak/medium/strong thirds by speed
/// rank, returning the indices of each group (weakest first).
pub fn tier_indices(speeds: &[f64], tiers: usize) -> Vec<Vec<usize>> {
    assert!(tiers > 0, "tier_indices: zero tiers");
    let mut order: Vec<usize> = (0..speeds.len()).collect();
    order.sort_by(|&a, &b| speeds[a].partial_cmp(&speeds[b]).expect("finite speeds"));
    let mut groups = vec![Vec::new(); tiers];
    let per = speeds.len().div_ceil(tiers);
    for (rank, idx) in order.into_iter().enumerate() {
        groups[(rank / per.max(1)).min(tiers - 1)].push(idx);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_speeds_are_deterministic_and_bounded() {
        let a = uniform_speeds(24, 0.1, 1.0, 1);
        let b = uniform_speeds(24, 0.1, 1.0, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| (0.1..=1.0).contains(&s)));
        assert_ne!(a, uniform_speeds(24, 0.1, 1.0, 2));
    }

    #[test]
    fn variance_generator_hits_exact_moments_even_n() {
        let speeds = speeds_with_variance(10, 0.5, 0.04);
        assert!((mean(&speeds) - 0.5).abs() < 1e-12);
        assert!((variance(&speeds) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn variance_generator_odd_n_keeps_mean() {
        let speeds = speeds_with_variance(7, 0.5, 0.01);
        assert!((mean(&speeds) - 0.5).abs() < 1e-12);
        // One client sits exactly at the mean.
        assert!(speeds.iter().any(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    fn zero_variance_is_homogeneous() {
        let speeds = speeds_with_variance(6, 0.5, 0.0);
        assert!(speeds.iter().all(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "leaves (0, 1]")]
    fn excessive_variance_is_rejected() {
        speeds_with_variance(4, 0.5, 0.5);
    }

    #[test]
    fn random_variance_speeds_have_roughly_correct_moments() {
        let speeds = random_speeds_with_variance(2000, 0.5, 0.02, 3);
        assert!((mean(&speeds) - 0.5).abs() < 0.02, "mean {}", mean(&speeds));
        assert!((variance(&speeds) - 0.02).abs() < 0.005, "var {}", variance(&speeds));
        assert!(speeds.iter().all(|&s| (0.05..=1.0).contains(&s)));
    }

    #[test]
    fn random_variance_is_deterministic_per_seed() {
        let a = random_speeds_with_variance(10, 0.5, 0.05, 7);
        let b = random_speeds_with_variance(10, 0.5, 0.05, 7);
        assert_eq!(a, b);
        assert_ne!(a, random_speeds_with_variance(10, 0.5, 0.05, 8));
    }

    #[test]
    fn larger_clusters_have_slower_minima_on_average() {
        // The Figure 1(a) mechanism: E[min speed] falls as n grows.
        let avg_min = |n: usize| -> f64 {
            (0..40)
                .map(|s| {
                    random_speeds_with_variance(n, 0.5, 0.04, s)
                        .into_iter()
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / 40.0
        };
        assert!(avg_min(2) > avg_min(7));
    }

    #[test]
    fn tiers_group_by_rank() {
        let speeds = vec![0.9, 0.1, 0.5, 0.2, 0.8, 0.6];
        let tiers = tier_indices(&speeds, 3);
        assert_eq!(tiers.len(), 3);
        // Weakest tier holds the two slowest clients.
        assert_eq!(tiers[0], vec![1, 3]);
        assert_eq!(tiers[2], vec![4, 0]);
    }

    #[test]
    fn tier_count_larger_than_cluster_is_tolerated() {
        let speeds = vec![0.5, 0.6];
        let tiers = tier_indices(&speeds, 5);
        let total: usize = tiers.iter().map(|t| t.len()).sum();
        assert_eq!(total, 2);
    }
}
