//! Discrete-event cluster simulation substrate.
//!
//! The paper evaluates Aergia on a Kubernetes testbed where each client is
//! a Docker container throttled to a fraction (0.1–1.0) of a CPU core and
//! nodes exchange models over asynchronous, reliable RPC. This crate is
//! the deterministic stand-in (see `DESIGN.md` §3): a virtual clock and
//! event queue ([`event`]), per-node CPU speed models ([`node`]),
//! latency/bandwidth link models with optional fault injection
//! ([`network`]) and helpers for building heterogeneous speed assignments
//! ([`cluster`]).
//!
//! Nothing here knows about federated learning; the `aergia` core crate
//! builds its federator/client state machines on top.
//!
//! # Examples
//!
//! ```
//! use aergia_simnet::event::EventQueue;
//! use aergia_simnet::time::{SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_secs_f64(2.0), "late");
//! queue.push(SimTime::ZERO + SimDuration::from_secs_f64(1.0), "early");
//! let (t, event) = queue.pop().unwrap();
//! assert_eq!(event, "early");
//! assert_eq!(t.as_secs_f64(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod event;
pub mod network;
pub mod node;
pub mod time;

pub use event::EventQueue;
pub use network::{LinkModel, Network};
pub use node::{CpuModel, NodeId};
pub use time::{SimDuration, SimTime};
