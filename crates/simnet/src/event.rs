//! The time-ordered event queue driving the simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A min-heap of `(time, event)` pairs with FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in insertion order, which
/// keeps simulations deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use aergia_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), 'b');
/// q.push(SimTime::from_micros(1), 'a');
/// q.push(SimTime::from_micros(5), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Reverse(Entry { time, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 'a');
        q.push(SimTime::from_micros(30), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_micros(20), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
