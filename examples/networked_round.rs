//! Networked round demo: the `aergia-net` coordinator and four client
//! workers, all over loopback TCP in one process, compared against the
//! in-process simulator on the identical configuration.
//!
//! This is the library-level version of what the `aergia-coordinator` /
//! `aergia-client` binaries do across processes (and what
//! `crates/net/tests/e2e.rs` asserts with real process kills): the
//! engine state machine is shared, so the networked run's metrics and
//! final weights are bit-identical to the simulator's.
//!
//! ```sh
//! cargo run --release --example networked_round
//! ```

use aergia::prelude::*;
use aergia_codec::CodecConfig;
use aergia_net::client::{self, ClientOpts};
use aergia_net::coordinator::{self, CoordinatorOpts};
use aergia_net::presets::smoke_config;

fn main() {
    let dir = std::env::temp_dir().join(format!("aergia_networked_round_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create run dir");

    let config = smoke_config(33, CodecConfig::DenseF32);
    let num_clients = config.num_clients;
    let opts = CoordinatorOpts::in_dir(&dir);
    let port_file = opts.port_file.clone();

    println!("serving {num_clients} workers over loopback TCP (run dir: {})", dir.display());
    let workers: Vec<_> = (0..num_clients)
        .map(|id| {
            let opts = ClientOpts { id, port_file: port_file.clone(), crash_at_round: None };
            std::thread::spawn(move || client::run(&opts))
        })
        .collect();

    let outcome =
        coordinator::serve(config, Strategy::aergia_default(), TopologyBuilder::new(), &opts)
            .expect("networked run")
            .expect("no halt hook configured");
    for (id, worker) in workers.into_iter().enumerate() {
        worker.join().expect("worker thread").unwrap_or_else(|e| panic!("worker {id}: {e}"));
    }

    println!("\n round  accuracy  loss    offloads  dropped  bytes on wire");
    for r in &outcome.result.rounds {
        println!(
            " {:>5}  {:>7.3}  {:>6.3}  {:>8}  {:>7}  {:>13}",
            r.round,
            r.test_accuracy,
            r.train_loss,
            r.offloads.len(),
            r.dropped.len(),
            r.bytes_on_wire,
        );
    }
    println!(" final accuracy: {:.3}", outcome.result.final_accuracy);

    // The whole point: the TCP run *is* the simulator run, bit for bit.
    let mut engine =
        Engine::new(smoke_config(33, CodecConfig::DenseF32), Strategy::aergia_default())
            .expect("valid config");
    let expected = engine.run().expect("in-process run");
    assert_eq!(outcome.result, expected, "metrics diverged from the simulator");
    let identical = outcome
        .weights
        .iter()
        .zip(engine.global_weights())
        .all(|(a, b)| a.shape() == b.shape() && a.data() == b.data());
    assert!(identical, "final weights diverged from the simulator");
    println!(" networked run is bit-identical to the in-process simulator ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
