//! What a byte costs on a constrained edge uplink: sweep the wire codecs
//! over [`LinkModel::edge`] and compare time-to-accuracy against
//! bytes-on-wire per strategy.
//!
//! The dense codec ships every `f32`; int8 quantization cuts transfers
//! ≈4×; top-k deltas cut steady-state frames ≈10× (at 50‰) — the run
//! ratio approaches that as the dense round-0 keyframe amortizes over
//! more rounds — but slow convergence, because most of each update waits
//! in the error-feedback residual. On a slow link the lossy codecs buy
//! wall-clock time with accuracy — exactly the communication/computation
//! trade-off Aergia's offloading moves.
//!
//! ```sh
//! AERGIA_SCALE=smoke cargo run --release --example compression_tradeoff
//! ```

use aergia::prelude::*;
use aergia_bench::{engine_parallelism, Scale};
use aergia_codec::CodecConfig;
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_simnet::LinkModel;

fn config(codec: CodecConfig) -> ExperimentConfig {
    let smoke = Scale::from_env() == Scale::Smoke;
    let speeds = vec![0.15, 0.4, 0.7, 1.0];
    ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: if smoke { 192 } else { 384 },
            test_size: if smoke { 96 } else { 192 },
            seed: 23,
        },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: speeds.len(),
        clients_per_round: speeds.len(),
        rounds: if smoke { 3 } else { 8 },
        local_updates: if smoke { 6 } else { 12 },
        batch_size: 8,
        speeds,
        // The point of the sweep: a constrained edge uplink, where model
        // transfers dominate the round and encoded size moves the clock.
        link: LinkModel::edge(),
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        codec,
        seed: 31,
        ..ExperimentConfig::default()
    }
}

/// First virtual time at which the run's accuracy reaches `target`.
fn time_to_accuracy(curve: &[(f64, f64)], target: f64) -> String {
    curve
        .iter()
        .find(|(_, acc)| *acc >= target)
        .map_or_else(|| "-".to_string(), |(t, _)| format!("{t:.1}s"))
}

fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = 0.60;
    let codecs =
        [CodecConfig::DenseF32, CodecConfig::QuantI8, CodecConfig::TopKDelta { keep_permille: 50 }];

    println!("edge link ({:?}), accuracy target {target}", LinkModel::edge());
    println!(
        "{:<16}{:<12}{:>10}{:>12}{:>14}{:>14}{:>10}",
        "codec", "strategy", "accuracy", "t@target", "total time", "bytes", "vs dense"
    );

    for strategy in [Strategy::FedAvg, Strategy::aergia_default()] {
        let mut dense_bytes = None;
        for codec in codecs {
            let result = Engine::new(config(codec), strategy)?.run()?;
            let bytes = result.total_bytes_on_wire();
            let dense = *dense_bytes.get_or_insert(bytes);
            println!(
                "{:<16}{:<12}{:>10.3}{:>12}{:>13.1}s{:>14}{:>9.1}x",
                codec.to_string(),
                strategy.name(),
                result.final_accuracy,
                time_to_accuracy(&result.accuracy_over_time(), target),
                result.total_time().as_secs_f64(),
                mib(bytes),
                dense as f64 / bytes as f64,
            );
        }
        println!();
    }

    println!(
        "reading the table: quantization keeps accuracy at ~4x fewer bytes; top-k\n\
         shrinks steady-state frames ~10x (its run total amortizes the dense\n\
         round-0 keyframe, so longer runs approach that) at an accuracy cost that\n\
         error feedback repays over more rounds. Aergia's offloads compound with\n\
         compression because its extra client-to-client snapshots shrink too."
    );
    Ok(())
}
