//! Dropping stragglers vs rescuing them: deadline-FedAvg discards slow
//! clients' updates (fast but lossy, the paper's Figure 1(b)/(c)
//! motivation), while Aergia offloads their feature training and keeps
//! their contribution.
//!
//! ```sh
//! cargo run --release --example deadline_vs_offloading
//! ```

use aergia::prelude::*;
use aergia_bench::{engine_parallelism, Scale};
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

fn config() -> ExperimentConfig {
    let smoke = Scale::from_env() == Scale::Smoke;
    // Two severe stragglers hold two rare classes each; losing them costs
    // accuracy, not just time.
    let speeds = vec![0.1, 0.12, 0.6, 0.7, 0.85, 1.0];
    ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: if smoke { 240 } else { 480 },
            test_size: if smoke { 80 } else { 160 },
            seed: 17,
        },
        arch: ModelArch::MnistCnn,
        partition: Scheme::NonIid { classes_per_client: 2 },
        num_clients: speeds.len(),
        clients_per_round: speeds.len(),
        rounds: if smoke { 2 } else { 6 },
        local_updates: if smoke { 6 } else { 12 },
        batch_size: 8,
        speeds,
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        seed: 29,
        ..ExperimentConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Calibrate a deadline that cuts off the stragglers: a bit above the
    // fast clients' round time.
    let fast_round = {
        let mut probe = config();
        probe.mode = Mode::Timing;
        probe.speeds = vec![0.6; 6];
        Engine::new(probe, Strategy::FedAvg)?.run()?.mean_round_secs()
    };

    println!(
        "{:<22}{:>14}{:>12}{:>12}{:>10}",
        "strategy", "total time", "accuracy", "dropped", "offloads"
    );
    for strategy in [
        Strategy::FedAvg,
        Strategy::DeadlineFedAvg { deadline: SimDuration::from_secs_f64(fast_round * 1.2) },
        Strategy::aergia_default(),
    ] {
        let result = Engine::new(config(), strategy)?.run()?;
        println!(
            "{:<22}{:>13.1}s{:>12.3}{:>12}{:>10}",
            strategy.name(),
            result.total_time().as_secs_f64(),
            result.final_accuracy,
            result.total_dropped(),
            result.total_offloads()
        );
    }
    println!();
    println!(
        "the deadline matches Aergia's speed but pays for it in accuracy: the\n\
         stragglers' unique classes vanish from the global model. Aergia keeps them."
    );
    Ok(())
}
