//! Quickstart: train a federated model with Aergia on a small
//! heterogeneous cluster and print the per-round progress.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aergia::prelude::*;
use aergia_bench::{engine_parallelism, Scale};
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six clients with very different CPU shares — client 0 is a severe
    // straggler, exactly the situation Aergia targets. AERGIA_SCALE=smoke
    // shrinks the run for CI; AERGIA_THREADS caps the parallel runtime.
    let smoke = Scale::from_env() == Scale::Smoke;
    let speeds = vec![0.12, 0.3, 0.5, 0.7, 0.9, 1.0];
    let rounds = if smoke { 2 } else { 6 };

    let config = ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::FmnistLike,
            train_size: if smoke { 240 } else { 480 },
            test_size: if smoke { 80 } else { 160 },
            seed: 1,
        },
        arch: ModelArch::FmnistCnn,
        partition: Scheme::NonIid { classes_per_client: 3 },
        num_clients: speeds.len(),
        clients_per_round: speeds.len(),
        rounds,
        local_updates: if smoke { 6 } else { 16 },
        batch_size: 8,
        speeds,
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        seed: 42,
        ..ExperimentConfig::default()
    };

    let mut engine = Engine::new(config, Strategy::aergia_default())?;
    println!("running {rounds} rounds of Aergia on 6 heterogeneous clients...");

    let result = engine.run()?;
    println!();
    println!("round  duration   accuracy   offloads");
    for r in &result.rounds {
        println!(
            "{:>5}  {:>7.1}s   {:>8.3}   {:?}",
            r.round,
            r.duration.as_secs_f64(),
            r.test_accuracy,
            r.offloads
        );
    }
    println!();
    println!(
        "final accuracy {:.3} after {:.1}s of simulated training ({} offloads)",
        result.final_accuracy,
        result.total_time().as_secs_f64(),
        result.total_offloads()
    );
    Ok(())
}
