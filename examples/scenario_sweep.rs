//! Scenario matrix sweep: every axis of the scenario engine — buffered
//! asynchronous aggregation, seeded churn with both offload-recovery
//! policies, and Byzantine clients under each robust aggregator — run on
//! one heterogeneous cluster and tabulated side by side.
//!
//! Each row is a complete federated run on the *same* data, model and
//! speed distribution; only `ExperimentConfig::scenario` changes. The
//! rows therefore answer the questions `docs/scenarios.md` poses: what
//! does an asynchronous fold cost in accuracy, how much does churn hurt,
//! and how well does each robust aggregator blunt an adversary the plain
//! mean cannot survive.
//!
//! The cluster itself is declared through [`TopologyBuilder`] — the
//! replacement for the deprecated post-build engine mutators — so this
//! example doubles as the builder's end-to-end demo: one client is
//! slowed to a crawl and mild network jitter is injected, both validated
//! against the configuration before the engine exists.
//!
//! ```sh
//! AERGIA_SCALE=smoke cargo run --release --example scenario_sweep
//! ```

use aergia::prelude::*;
use aergia_bench::{engine_parallelism, Scale};
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_simnet::SimDuration;

/// One row of the sweep: a named scenario and the strategy it runs under.
struct Row {
    name: &'static str,
    scenario: ScenarioConfig,
    strategy: Strategy,
}

fn base(smoke: bool) -> ExperimentConfig {
    let clients = 4;
    ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: if smoke { 60 } else { 120 } * clients,
            test_size: if smoke { 120 } else { 240 },
            seed: 17,
        },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: clients,
        clients_per_round: clients,
        rounds: if smoke { 3 } else { 6 },
        local_updates: if smoke { 8 } else { 16 },
        batch_size: 8,
        speeds: vec![0.15, 0.4, 0.7, 1.0],
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        seed: 36,
        ..ExperimentConfig::default()
    }
}

fn rows() -> Vec<Row> {
    let asynchronous = |mixing| AggregationMode::BufferedAsync {
        max_staleness: SimDuration::from_secs_f64(1e6),
        mixing,
    };
    let churn = |offload_policy| {
        Some(ChurnConfig { leave_prob: 0.15, rejoin_prob: 0.7, crash_prob: 0.45, offload_policy })
    };
    let sign_flipper = vec![ByzantineSpec { client: 0, attack: Attack::SignFlip }];
    let noisy = vec![ByzantineSpec { client: 0, attack: Attack::ScaledNoise { scale: 4.0 } }];
    vec![
        Row {
            name: "baseline (sync mean)",
            scenario: ScenarioConfig::default(),
            strategy: Strategy::aergia_default(),
        },
        Row {
            name: "async mixing=0.5",
            scenario: ScenarioConfig { aggregation: asynchronous(0.5), ..Default::default() },
            strategy: Strategy::aergia_default(),
        },
        Row {
            name: "churn drop",
            scenario: ScenarioConfig { churn: churn(OffloadPolicy::Drop), ..Default::default() },
            strategy: Strategy::aergia_default(),
        },
        Row {
            name: "churn reschedule",
            scenario: ScenarioConfig {
                churn: churn(OffloadPolicy::Reschedule),
                ..Default::default()
            },
            strategy: Strategy::aergia_default(),
        },
        Row {
            name: "sign-flip, mean",
            scenario: ScenarioConfig { byzantine: sign_flipper.clone(), ..Default::default() },
            strategy: Strategy::FedAvg,
        },
        Row {
            name: "sign-flip, median",
            scenario: ScenarioConfig {
                robust: RobustAggregation::CoordinateMedian,
                byzantine: sign_flipper,
                ..Default::default()
            },
            strategy: Strategy::FedAvg,
        },
        Row {
            name: "noise, trimmed mean",
            scenario: ScenarioConfig {
                robust: RobustAggregation::TrimmedMean { trim_ratio: 0.3 },
                byzantine: noisy,
                ..Default::default()
            },
            strategy: Strategy::FedAvg,
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = Scale::from_env() == Scale::Smoke;

    // The cluster every row runs on: client 3's downlink is jittered and
    // client 0 is slowed further than its configured fraction — declared
    // builder-style so the overrides are validated up front.
    let topology = || {
        TopologyBuilder::new().client_speed(0, 0.12).network_faults(
            0.0,
            SimDuration::from_secs_f64(0.01),
            9,
        )
    };

    println!("scenario sweep ({} scale)", if smoke { "smoke" } else { "default" });
    println!(
        "{:<22}{:>10}{:>12}{:>10}{:>9}{:>9}",
        "scenario", "accuracy", "total time", "offloads", "crashed", "stalled"
    );

    for row in rows() {
        let mut config = base(smoke);
        config.scenario = row.scenario;
        let mut engine = Engine::with_topology(config, row.strategy, topology())?;
        let result = engine.run()?;
        let crashed: usize = result.rounds.iter().map(|r| r.dropped.len()).sum();
        // A stalled round is the async fold's documented all-stale
        // degeneracy (and an empty churn round): it completes, counts,
        // and changes nothing.
        let stalled = result.rounds.iter().filter(|r| r.participants.is_empty()).count();
        println!(
            "{:<22}{:>10.3}{:>11.1}s{:>10}{:>9}{:>9}",
            row.name,
            result.final_accuracy,
            result.total_time().as_secs_f64(),
            result.total_offloads(),
            crashed,
            stalled,
        );
    }

    println!();
    println!(
        "reading the table: async trades accuracy for never gating on stragglers;\n\
         churn costs updates but not liveness; the robust rows hold accuracy under\n\
         an adversary that visibly degrades the plain mean. Every row is seeded and\n\
         bit-reproducible — rerun this binary and the numbers will not move."
    );
    Ok(())
}
