//! Straggler rescue in action: the same workload under FedAvg, TiFL and
//! Aergia on a cluster whose speeds span 0.1–1.0, reporting who wins on
//! wall-clock and by how much (the paper's headline result).
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use aergia::prelude::*;
use aergia_bench::{engine_parallelism, Scale};
use aergia_data::partition::Scheme;
use aergia_data::{DataConfig, DatasetSpec};
use aergia_nn::models::ModelArch;
use aergia_simnet::cluster;

fn config(speeds: &[f64]) -> ExperimentConfig {
    let smoke = Scale::from_env() == Scale::Smoke;
    ExperimentConfig {
        dataset: DataConfig {
            spec: DatasetSpec::MnistLike,
            train_size: if smoke { 40 } else { 64 } * speeds.len(),
            test_size: if smoke { 80 } else { 160 },
            seed: 7,
        },
        arch: ModelArch::MnistCnn,
        partition: Scheme::Iid,
        num_clients: speeds.len(),
        clients_per_round: speeds.len(),
        rounds: if smoke { 2 } else { 5 },
        local_updates: if smoke { 6 } else { 16 },
        batch_size: 8,
        speeds: speeds.to_vec(),
        mode: Mode::Real,
        parallelism: engine_parallelism(),
        seed: 11,
        ..ExperimentConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clients = if Scale::from_env() == Scale::Smoke { 6 } else { 8 };
    let speeds = cluster::uniform_speeds(clients, 0.1, 1.0, 23);
    println!(
        "cluster speeds: {:?}",
        speeds.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!();
    println!(
        "{:<18}{:>14}{:>14}{:>12}{:>12}",
        "algorithm", "total time", "mean round", "accuracy", "offloads"
    );

    let mut fedavg_total = None;
    for strategy in [Strategy::FedAvg, Strategy::tifl_default(), Strategy::aergia_default()] {
        let result = Engine::new(config(&speeds), strategy)?.run()?;
        let total = result.total_time().as_secs_f64();
        println!(
            "{:<18}{:>13.1}s{:>13.1}s{:>12.3}{:>12}",
            strategy.name(),
            total,
            result.mean_round_secs(),
            result.final_accuracy,
            result.total_offloads()
        );
        if matches!(strategy, Strategy::FedAvg) {
            fedavg_total = Some(total);
        } else if matches!(strategy, Strategy::Aergia { .. }) {
            let base = fedavg_total.expect("FedAvg ran first");
            println!();
            println!(
                "Aergia finished the same {} rounds {:.0}% faster than FedAvg",
                result.rounds.len(),
                100.0 * (1.0 - total / base)
            );
        }
    }
    Ok(())
}
