//! Inside the privacy machinery: clients seal their class histograms for
//! the enclave, the enclave emits the EMD similarity matrix, and the
//! scheduler's matching changes depending on the similarity factor `f`.
//!
//! ```sh
//! cargo run --release --example noniid_similarity
//! ```

use aergia::scheduler::{schedule, ClientPerf, OpVariant};
use aergia_bench::Scale;
use aergia_data::partition::{Partition, Scheme};
use aergia_data::{DataConfig, DatasetSpec};
use aergia_enclave::{establish_session, SimilarityEnclave};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A non-IID split: each of 6 clients owns 2 of the 10 classes.
    // (AERGIA_SCALE=smoke shrinks the dataset for CI; the protocol and the
    // matching conclusions are size-independent.)
    let train_size = if Scale::from_env() == Scale::Smoke { 300 } else { 600 };
    let (train, _) =
        DataConfig { spec: DatasetSpec::FmnistLike, train_size, test_size: 10, seed: 3 }
            .generate_pair();
    let partition = Partition::split(&train, 6, Scheme::NonIid { classes_per_client: 2 }, 5);

    // Every client attests the enclave and submits its sealed histogram;
    // the federator only ever sees the resulting matrix.
    let mut enclave = SimilarityEnclave::new(train.num_classes(), 99);
    for client in 0..6u32 {
        let mut session = establish_session(&mut enclave, client, 1000 + u64::from(client))?;
        let hist = partition.class_histogram(&train, client as usize);
        println!("client {client} class histogram: {hist:?}");
        enclave.submit(client, session.seal_histogram(&hist))?;
    }
    let matrix = enclave.compute_similarity_matrix()?;

    println!();
    println!("EMD similarity matrix (0 = identical distributions):");
    for row in &matrix {
        println!("  {}", row.iter().map(|d| format!("{d:5.2}")).collect::<Vec<_>>().join(" "));
    }

    // A straggler (client 0) and five potential receivers of equal speed:
    // with f = 0 the scheduler picks purely by speed; with f = 1 it
    // prefers the receiver whose data looks like the straggler's.
    let perfs: Vec<ClientPerf> = (0..6)
        .map(|id| {
            let full = if id == 0 { 2.0 } else { 0.4 + 0.01 * id as f64 };
            ClientPerf {
                id,
                t123: 0.4 * full,
                t4: 0.6 * full,
                feature_only: 0.8 * full,
                remaining: 24,
            }
        })
        .collect();

    println!();
    for f in [0.0, 1.0] {
        let sched = schedule(&perfs, &matrix, f, OpVariant::Unimodal);
        let a = sched.assignments.first().expect("one straggler gets matched");
        println!(
            "f = {f}: straggler {} offloads {} batches to client {} (EMD {:.2})",
            a.sender, a.offload_batches, a.receiver, matrix[a.sender][a.receiver]
        );
    }
    println!();
    println!("with f = 1 the match favours the most similar dataset, not just raw speed.");
    Ok(())
}
